// Package store is MOSAIC's durable, content-addressed result store:
// the persistence layer that turns one-shot corpus runs into an
// incrementally updated service.
//
// Traces are keyed by the SHA-256 of their canonical binary encoding
// (darshan.MarshalBinary is a pure function of the Job value, so the
// same trace always hashes the same). Categorization results are
// keyed by (trace hash, Config fingerprint): re-analyzing an
// unchanged trace under an unchanged effective configuration is a
// cache hit, and changing any threshold naturally invalidates every
// stored result without touching the trace blobs.
//
// On disk the store is an append-only segment log (numbered *.seg
// files, CRC-framed records) plus an in-memory key → location index
// rebuilt by scanning the segments on Open. Appends are crash-safe:
// a torn tail (kill mid-append) fails its CRC or length check on
// recovery and only the torn frame is dropped — every fully written
// record survives. Hot values are served from a byte-bounded LRU
// cache so memory stays flat regardless of store size.
//
// Durability (Options.Sync) is group-committed: concurrent writers
// share one fsync, so a burst of appends costs one disk flush, not
// one per record — see waitDurable for the leader/follower protocol.
package store

import (
	"bufio"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/mosaic-hpc/mosaic/internal/category"
	"github.com/mosaic-hpc/mosaic/internal/core"
	"github.com/mosaic-hpc/mosaic/internal/darshan"
	"github.com/mosaic-hpc/mosaic/internal/explain"
	"github.com/mosaic-hpc/mosaic/internal/reqtrace"
)

// TraceID is the content address of one trace: the lowercase hex
// SHA-256 of its canonical binary encoding.
type TraceID string

// Valid reports whether the ID is a well-formed SHA-256 hex digest.
func (id TraceID) Valid() bool {
	if len(id) != sha256.Size*2 {
		return false
	}
	for _, c := range id {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// HashBytes returns the content address of an encoded trace blob.
func HashBytes(data []byte) TraceID {
	sum := sha256.Sum256(data)
	return TraceID(hex.EncodeToString(sum[:]))
}

// TraceKey canonically encodes a job and returns its content address
// alongside the encoding, so callers that go on to persist the blob
// do not encode twice.
func TraceKey(j *darshan.Job) (TraceID, []byte, error) {
	data, err := darshan.MarshalBinary(j)
	if err != nil {
		return "", nil, fmt.Errorf("store: encoding trace: %w", err)
	}
	return HashBytes(data), data, nil
}

// Record kinds in the segment log.
const (
	kindTrace   byte = 1
	kindResult  byte = 2
	kindExplain byte = 3
)

// Frame layout: [u32 payloadLen][payload][u32 crc32(payload)] with
// payload = [u8 kind][u16 keyLen][key][value], all little-endian.
const (
	frameHeaderLen  = 4
	framePayloadMin = 1 + 2
	frameCRCLen     = 4
	maxFrameLen     = 1 << 30 // 1 GiB per record, matching darshan's decoder limits
	maxKeyLen       = 1 << 10
)

// Options tunes a store. The zero value selects sane defaults.
type Options struct {
	// MaxSegmentBytes rotates the active segment once it exceeds this
	// size (<= 0: 64 MiB).
	MaxSegmentBytes int64
	// CacheBytes bounds the in-memory value cache (0: 32 MiB; < 0:
	// cache disabled). The key → location index is always resident.
	CacheBytes int64
	// Sync makes every Put durable before it returns: an append is only
	// acknowledged after an fsync covering it. Syncs are group-committed —
	// concurrent writers (and every record of a PutTraceBatch) share one
	// fsync, so durability costs one disk flush per batch, not per
	// record. Without Sync the log is still crash-consistent (torn tails
	// are dropped on recovery).
	Sync bool
}

func (o Options) withDefaults() Options {
	if o.MaxSegmentBytes <= 0 {
		o.MaxSegmentBytes = 64 << 20
	}
	if o.CacheBytes == 0 {
		o.CacheBytes = 32 << 20
	}
	return o
}

// loc addresses one stored value inside a segment.
type loc struct {
	seg    int
	valOff int64
	valLen int
}

// Stats is a point-in-time view of a store.
type Stats struct {
	Traces           int   `json:"traces"`
	Results          int   `json:"results"`
	Explanations     int   `json:"explanations"`
	Segments         int   `json:"segments"`
	DiskBytes        int64 `json:"disk_bytes"`
	CacheItems       int   `json:"cache_items"`
	CacheBytes       int64 `json:"cache_bytes"`
	Hits             int64 `json:"hits"`   // GetResult found a stored result
	Misses           int64 `json:"misses"` // GetResult found nothing
	RecoveredFrames  int   `json:"recovered_frames"`
	DroppedTailBytes int64 `json:"dropped_tail_bytes"`
	GroupSyncs       int64 `json:"group_syncs"`   // fsyncs issued by group-commit leaders
	SyncedFrames     int64 `json:"synced_frames"` // frames those fsyncs made durable
}

// Store is a content-addressed trace/result store backed by an
// append-only segment log. All methods are safe for concurrent use.
type Store struct {
	dir  string
	opts Options

	mu      sync.RWMutex // guards index, segment bookkeeping, appends
	index   map[string]loc
	readers []*os.File // one read handle per segment, index = segment number - 1
	active  *os.File   // append handle of the last segment
	size    int64      // bytes in the active segment
	seq     int64      // appended-frame watermark (monotonic across segments)
	wbuf    []byte     // reusable frame staging buffer (guarded by mu)
	closed  bool

	gc groupCommit // fsync cohort state; locked after mu, never before

	traces   int
	results  int
	explains int

	cache *lru

	hits, misses     atomic.Int64
	groupSyncs       atomic.Int64 // fsyncs issued by group-commit leaders
	syncedFrames     atomic.Int64 // frames made durable by those fsyncs
	recoveredFrames  int
	droppedTailBytes int64

	rotateHook atomic.Value // func(segment int); observes segment rotations
}

// SetRotateHook registers fn to be called with the new segment number
// each time the store rotates away from a live segment (startup opens
// and recovery do not count). The hook runs while internal locks are
// held: it must be fast and must not call back into the store.
func (s *Store) SetRotateHook(fn func(segment int)) {
	s.rotateHook.Store(fn)
}

// groupCommit coordinates durability acknowledgments: appenders wait
// until the durable watermark passes their frame's sequence number, and
// the first waiter to find no fsync in flight becomes the leader,
// syncing once on behalf of every frame appended before it started.
// Writers that append while a sync is in flight form the next cohort.
type groupCommit struct {
	mu      sync.Mutex
	cond    *sync.Cond
	syncing bool
	synced  int64 // durable-frame watermark
}

// Open opens (creating if necessary) the store rooted at dir and
// rebuilds the in-memory index from the segment log. Torn tails from
// a crashed writer are detected by CRC/length validation and dropped;
// everything before them is recovered.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	s := &Store{
		dir:   dir,
		opts:  opts,
		index: make(map[string]loc),
		cache: newLRU(opts.CacheBytes),
	}
	s.gc.cond = sync.NewCond(&s.gc.mu)
	if err := s.recover(); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// segPath names segment n (1-based).
func (s *Store) segPath(n int) string {
	return filepath.Join(s.dir, fmt.Sprintf("%06d.seg", n))
}

// recover scans every segment in order, rebuilding the index. The
// last segment becomes the active one; if its tail is torn it is
// truncated to the last valid frame so appends resume cleanly.
func (s *Store) recover() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: reading %s: %w", s.dir, err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".seg") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return s.openSegment(1)
	}
	for i, name := range names {
		f, err := os.Open(filepath.Join(s.dir, name))
		if err != nil {
			return fmt.Errorf("store: opening segment %s: %w", name, err)
		}
		s.readers = append(s.readers, f)
		good, dropped, err := s.scanSegment(i+1, f)
		if err != nil {
			return err
		}
		s.droppedTailBytes += dropped
		last := i == len(names)-1
		if dropped > 0 && last {
			if err := os.Truncate(filepath.Join(s.dir, name), good); err != nil {
				return fmt.Errorf("store: truncating torn tail of %s: %w", name, err)
			}
		}
		if last {
			w, err := os.OpenFile(filepath.Join(s.dir, name), os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return fmt.Errorf("store: reopening %s for append: %w", name, err)
			}
			s.active = w
			s.size = good
		}
	}
	return nil
}

// readaheadBytes sizes the buffered reader used for sequential segment
// scans (recovery and bulk backfill): large enough that a multi-GiB log
// is read at disk bandwidth, not at one syscall per frame.
const readaheadBytes = 1 << 20

// scanSegment walks one segment's frames, indexing each valid record.
// It returns the offset of the last valid frame end and how many
// trailing bytes were dropped as torn. The scan is a single buffered
// sequential pass with a reused frame buffer, replacing the three
// positioned reads per frame that made recovery syscall-bound.
func (s *Store) scanSegment(seg int, f *os.File) (good int64, dropped int64, err error) {
	info, err := f.Stat()
	if err != nil {
		return 0, 0, fmt.Errorf("store: stat segment %d: %w", seg, err)
	}
	fileSize := info.Size()
	br := bufio.NewReaderSize(io.NewSectionReader(f, 0, fileSize), readaheadBytes)
	var off int64
	var hdr [frameHeaderLen]byte
	var frame []byte
	for {
		if off+frameHeaderLen > fileSize {
			break // clean end (off == fileSize) or torn length prefix
		}
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return 0, 0, fmt.Errorf("store: reading segment %d at %d: %w", seg, off, err)
		}
		n := int64(binary.LittleEndian.Uint32(hdr[:]))
		if n < framePayloadMin || n > maxFrameLen || off+frameHeaderLen+n+frameCRCLen > fileSize {
			break // torn or garbage tail
		}
		if int64(cap(frame)) < n+frameCRCLen {
			frame = make([]byte, n+frameCRCLen)
		}
		buf := frame[:n+frameCRCLen]
		if _, err := io.ReadFull(br, buf); err != nil {
			return 0, 0, fmt.Errorf("store: reading segment %d frame at %d: %w", seg, off, err)
		}
		payload := buf[:n]
		want := binary.LittleEndian.Uint32(buf[n:])
		if crc32.ChecksumIEEE(payload) != want {
			break // torn frame: checksum of a partial write never matches
		}
		kind := payload[0]
		keyLen := int(binary.LittleEndian.Uint16(payload[1:3]))
		if keyLen > maxKeyLen || framePayloadMin+int64(keyLen) > n || (kind != kindTrace && kind != kindResult && kind != kindExplain) {
			break // structurally invalid: treat like a torn tail
		}
		key := string(payload[3 : 3+keyLen])
		s.indexPut(key, loc{
			seg:    seg,
			valOff: off + frameHeaderLen + framePayloadMin + int64(keyLen),
			valLen: int(n) - framePayloadMin - keyLen,
		})
		s.recoveredFrames++
		off += frameHeaderLen + n + frameCRCLen
	}
	return off, fileSize - off, nil
}

// indexPut records a key's location, maintaining the
// trace/result/explanation counters (last write wins, matching log
// replay order).
func (s *Store) indexPut(key string, l loc) {
	if _, exists := s.index[key]; !exists {
		switch {
		case strings.HasPrefix(key, "t/"):
			s.traces++
		case strings.HasPrefix(key, "e/"):
			s.explains++
		default:
			s.results++
		}
	}
	s.index[key] = l
}

// openSegment creates segment n and makes it active. When rotating away
// from a live segment under Options.Sync, the sealed segment is synced
// first and the durable watermark advanced, so no group-commit leader
// ever needs a write handle to a sealed segment.
func (s *Store) openSegment(n int) error {
	path := s.segPath(n)
	w, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating segment %s: %w", path, err)
	}
	r, err := os.Open(path)
	if err != nil {
		w.Close()
		return fmt.Errorf("store: opening segment %s: %w", path, err)
	}
	if s.active != nil {
		if s.opts.Sync {
			if err := s.active.Sync(); err != nil {
				w.Close()
				r.Close()
				return fmt.Errorf("store: syncing sealed segment: %w", err)
			}
			s.gc.mu.Lock()
			if s.seq > s.gc.synced {
				s.groupSyncs.Add(1)
				s.syncedFrames.Add(s.seq - s.gc.synced)
				s.gc.synced = s.seq
			}
			s.gc.cond.Broadcast()
			s.gc.mu.Unlock()
		}
		s.active.Close() // seal previous segment; its reader stays open
		if fn, ok := s.rotateHook.Load().(func(segment int)); ok && fn != nil {
			fn(n)
		}
	}
	s.active = w
	s.readers = append(s.readers, r)
	s.size = 0
	return nil
}

// maxStagedBuf bounds the frame staging buffer kept across appends; one
// oversized batch must not pin its buffer for the store's lifetime.
const maxStagedBuf = 8 << 20

// appendFrame stages one framed record onto dst:
// [len][kind keyLen key value][crc].
func appendFrame(dst []byte, kind byte, key string, value []byte) []byte {
	payloadLen := framePayloadMin + len(key) + len(value)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(payloadLen))
	payloadStart := len(dst)
	dst = append(dst, kind)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(key)))
	dst = append(dst, key...)
	dst = append(dst, value...)
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[payloadStart:]))
}

// checkRecord validates one record's key and payload size.
func checkRecord(key string, value []byte) error {
	if len(key) > maxKeyLen {
		return fmt.Errorf("store: key too long (%d bytes)", len(key))
	}
	if payloadLen := framePayloadMin + len(key) + len(value); payloadLen > maxFrameLen {
		return fmt.Errorf("store: record too large (%d bytes)", payloadLen)
	}
	return nil
}

// trimWbuf returns the staging buffer for reuse, dropping it past the
// retention bound.
func (s *Store) trimWbuf(buf []byte) {
	if cap(buf) <= maxStagedBuf {
		s.wbuf = buf[:0]
	} else {
		s.wbuf = nil
	}
}

// appendLocked stages, writes and indexes one framed record, returning
// its sequence number. Callers hold s.mu; when Options.Sync is set they
// must call waitDurable(seq) after releasing it — acknowledgment before
// durability is the group-commit protocol's only caller obligation.
func (s *Store) appendLocked(kind byte, key string, value []byte) (int64, error) {
	if s.closed {
		return 0, fmt.Errorf("store: closed")
	}
	if err := checkRecord(key, value); err != nil {
		return 0, err
	}
	frame := appendFrame(s.wbuf[:0], kind, key, value)
	frameLen := int64(len(frame))
	_, err := s.active.Write(frame)
	s.trimWbuf(frame)
	if err != nil {
		return 0, fmt.Errorf("store: appending record: %w", err)
	}
	s.indexPut(key, loc{
		seg:    len(s.readers),
		valOff: s.size + frameHeaderLen + framePayloadMin + int64(len(key)),
		valLen: len(value),
	})
	s.size += frameLen
	s.seq++
	seq := s.seq
	if s.size >= s.opts.MaxSegmentBytes {
		if err := s.openSegment(len(s.readers) + 1); err != nil {
			return seq, err
		}
	}
	return seq, nil
}

// waitDurable blocks until the durable watermark covers seq: the heart
// of group commit. The first waiter to find no fsync in flight becomes
// the leader and syncs the active segment once for every frame appended
// before its snapshot; waiters whose frames land during that fsync form
// the next cohort. One fsync therefore acknowledges a whole group of
// concurrent appends, while writers keep appending during the flush.
func (s *Store) waitDurable(seq int64) error {
	g := &s.gc
	g.mu.Lock()
	defer g.mu.Unlock()
	for g.synced < seq {
		if g.syncing {
			g.cond.Wait()
			continue
		}
		g.syncing = true
		prev := g.synced
		g.mu.Unlock()

		s.mu.RLock()
		f, target, closed := s.active, s.seq, s.closed
		s.mu.RUnlock()
		var err error
		if f != nil && !closed {
			s.groupSyncs.Add(1)
			if err = f.Sync(); err != nil {
				// The handle may have been sealed by a segment rotation
				// or the store closed mid-flight; both sync before
				// closing, so the watermark (rechecked below) or the
				// closed flag tells us the cohort is already durable.
				s.mu.RLock()
				if s.closed {
					err = nil
				}
				s.mu.RUnlock()
			}
		}

		g.mu.Lock()
		g.syncing = false
		if err == nil {
			if target > g.synced {
				g.synced = target
			}
		} else if g.synced >= target {
			err = nil // rotation made the cohort durable under us
		}
		if g.synced > prev {
			s.syncedFrames.Add(g.synced - prev)
		}
		g.cond.Broadcast()
		if err != nil {
			return fmt.Errorf("store: sync: %w", err)
		}
	}
	return nil
}

// readValue fetches a value by location, via the LRU cache.
func (s *Store) readValue(key string, l loc) ([]byte, error) {
	if v, ok := s.cache.get(key); ok {
		return v, nil
	}
	s.mu.RLock()
	if l.seg < 1 || l.seg > len(s.readers) {
		s.mu.RUnlock()
		return nil, fmt.Errorf("store: invalid segment %d for key %q", l.seg, key)
	}
	r := s.readers[l.seg-1]
	s.mu.RUnlock()
	buf := make([]byte, l.valLen)
	if _, err := r.ReadAt(buf, l.valOff); err != nil && err != io.EOF {
		return nil, fmt.Errorf("store: reading %q: %w", key, err)
	}
	s.cache.put(key, buf)
	return buf, nil
}

func traceKeyOf(id TraceID) string              { return "t/" + string(id) }
func resultKeyOf(id TraceID, fp string) string  { return "r/" + string(id) + "/" + fp }
func explainKeyOf(id TraceID, fp string) string { return "e/" + string(id) + "/" + fp }

// PutTraceBytes stores an encoded trace blob under its content
// address. It returns the address and whether the blob was already
// present (content addressing makes re-ingest idempotent).
func (s *Store) PutTraceBytes(data []byte) (TraceID, bool, error) {
	return s.PutTraceBytesCtx(context.Background(), data)
}

// PutTraceBytesCtx is PutTraceBytes under a request-trace context:
// when ctx carries an active reqtrace trace, the commit (group-commit
// watermark wait + fsync under Options.Sync) is recorded as a
// "store.commit" span. Untraced contexts pay nothing.
func (s *Store) PutTraceBytesCtx(ctx context.Context, data []byte) (TraceID, bool, error) {
	id := HashBytes(data)
	key := traceKeyOf(id)
	s.mu.Lock()
	if _, ok := s.index[key]; ok {
		s.mu.Unlock()
		return id, true, nil
	}
	seq, err := s.appendLocked(kindTrace, key, data)
	s.mu.Unlock()
	if err != nil {
		return id, false, err
	}
	return id, false, s.commitCtx(ctx, seq, "traces", 1, int64(len(data)))
}

// commitCtx acknowledges one append: under Options.Sync it blocks in
// waitDurable until the group-commit watermark covers seq. When ctx
// carries an active request trace the wait is recorded as a
// "store.commit" span annotated with the record count, payload bytes
// and how many leader fsyncs the store issued while this commit
// waited (group_syncs — 0 means the cohort rode someone else's
// flush). The traced-ness check runs first so untraced callers (the
// batch engine, backfill, benchmarks) take the exact pre-tracing
// path: no clock reads, no allocations.
func (s *Store) commitCtx(ctx context.Context, seq int64, kind string, records, nbytes int64) error {
	if _, _, traced := reqtrace.FromContext(ctx); !traced {
		if s.opts.Sync {
			return s.waitDurable(seq)
		}
		return nil
	}
	sp := reqtrace.StartLeaf(ctx, "store.commit",
		reqtrace.Str("kind", kind),
		reqtrace.Int("records", records),
		reqtrace.Int("bytes", nbytes))
	if !s.opts.Sync {
		sp.SetAttr(reqtrace.Str("durability", "buffered"))
		sp.End()
		return nil
	}
	before := s.groupSyncs.Load()
	err := s.waitDurable(seq)
	sp.SetAttr(
		reqtrace.Str("durability", "fsync"),
		reqtrace.Int("group_syncs", s.groupSyncs.Load()-before))
	sp.SetError(err)
	sp.End()
	return err
}

// PutTraceBatch stores many encoded trace blobs in one staged write
// and — under Options.Sync — one shared fsync, so the per-record
// syscall and durability costs amortize across the whole group. It
// returns each blob's content address and whether it was already
// present (in the store, or earlier in the same batch). On error,
// nothing from the batch is acknowledged.
func (s *Store) PutTraceBatch(blobs [][]byte) ([]TraceID, []bool, error) {
	return s.PutTraceBatchCtx(context.Background(), blobs)
}

// PutTraceBatchCtx is PutTraceBatch under a request-trace context: the
// batch's group commit (one staged write, one shared fsync) is
// recorded as a "store.commit" span annotated with the batch size.
func (s *Store) PutTraceBatchCtx(ctx context.Context, blobs [][]byte) ([]TraceID, []bool, error) {
	ids := make([]TraceID, len(blobs))
	for i, b := range blobs {
		ids[i] = HashBytes(b)
	}
	dup, err := s.putTraceBatchKeyed(ctx, ids, blobs)
	return ids, dup, err
}

// PutTraceBatchKeyedCtx is PutTraceBatchCtx for callers that already
// hold each blob's content address: the SHA-256 pass over every blob
// is skipped. The IDs are trusted, not re-derived — the cluster
// protocol computes them once at the entry node from the canonical
// encoding it forwards — so this must never be fed IDs from outside
// that protocol.
func (s *Store) PutTraceBatchKeyedCtx(ctx context.Context, ids []TraceID, blobs [][]byte) ([]bool, error) {
	if len(ids) != len(blobs) {
		return nil, fmt.Errorf("store: keyed batch: %d ids for %d blobs", len(ids), len(blobs))
	}
	for _, id := range ids {
		if !id.Valid() {
			return nil, fmt.Errorf("store: keyed batch: invalid trace ID %q", string(id))
		}
	}
	return s.putTraceBatchKeyed(ctx, ids, blobs)
}

func (s *Store) putTraceBatchKeyed(ctx context.Context, ids []TraceID, blobs [][]byte) ([]bool, error) {
	dup := make([]bool, len(blobs))
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return dup, fmt.Errorf("store: closed")
	}
	buf := s.wbuf[:0]
	type staged struct {
		key    string
		valOff int64
		valLen int
	}
	frames := make([]staged, 0, len(blobs))
	seen := make(map[TraceID]bool, len(blobs))
	base := s.size
	for i, b := range blobs {
		key := traceKeyOf(ids[i])
		if _, ok := s.index[key]; ok || seen[ids[i]] {
			dup[i] = true
			continue
		}
		if err := checkRecord(key, b); err != nil {
			s.trimWbuf(buf)
			s.mu.Unlock()
			return dup, err
		}
		seen[ids[i]] = true
		frameOff := base + int64(len(buf))
		buf = appendFrame(buf, kindTrace, key, b)
		frames = append(frames, staged{
			key:    key,
			valOff: frameOff + frameHeaderLen + framePayloadMin + int64(len(key)),
			valLen: len(b),
		})
	}
	if len(frames) == 0 {
		s.trimWbuf(buf)
		s.mu.Unlock()
		return dup, nil
	}
	written := int64(len(buf))
	_, err := s.active.Write(buf)
	s.trimWbuf(buf)
	if err != nil {
		s.mu.Unlock()
		return dup, fmt.Errorf("store: appending batch: %w", err)
	}
	seg := len(s.readers)
	for _, fr := range frames {
		s.indexPut(fr.key, loc{seg: seg, valOff: fr.valOff, valLen: fr.valLen})
	}
	s.size += written
	s.seq += int64(len(frames))
	seq := s.seq
	var rotateErr error
	if s.size >= s.opts.MaxSegmentBytes {
		rotateErr = s.openSegment(len(s.readers) + 1)
	}
	s.mu.Unlock()
	if rotateErr != nil {
		return dup, rotateErr
	}
	return dup, s.commitCtx(ctx, seq, "traces", int64(len(frames)), written)
}

// PutTrace canonically encodes and stores a job.
func (s *Store) PutTrace(j *darshan.Job) (TraceID, bool, error) {
	_, data, err := TraceKey(j)
	if err != nil {
		return "", false, err
	}
	return s.PutTraceBytes(data)
}

// HasTrace reports whether a trace blob is stored.
func (s *Store) HasTrace(id TraceID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.index[traceKeyOf(id)]
	return ok
}

// GetTraceBytes returns the stored encoding of a trace, or (nil,
// false) when absent.
func (s *Store) GetTraceBytes(id TraceID) ([]byte, bool, error) {
	key := traceKeyOf(id)
	s.mu.RLock()
	l, ok := s.index[key]
	s.mu.RUnlock()
	if !ok {
		return nil, false, nil
	}
	v, err := s.readValue(key, l)
	return v, err == nil, err
}

// GetTrace decodes a stored trace.
func (s *Store) GetTrace(id TraceID) (*darshan.Job, bool, error) {
	data, ok, err := s.GetTraceBytes(id)
	if err != nil || !ok {
		return nil, ok, err
	}
	j, err := darshan.UnmarshalBinary(data)
	if err != nil {
		return nil, true, fmt.Errorf("store: decoding trace %s: %w", id, err)
	}
	return j, true, nil
}

// PutResult stores one categorization result under (trace, config
// fingerprint). Re-putting the same key appends a new frame and the
// index moves to it (last write wins, also on recovery replay).
func (s *Store) PutResult(id TraceID, fp string, res *core.Result) error {
	return s.PutResultCtx(context.Background(), id, fp, res)
}

// PutResultCtx is PutResult under a request-trace context: the commit
// is recorded as a "store.commit" span (kind=result).
func (s *Store) PutResultCtx(ctx context.Context, id TraceID, fp string, res *core.Result) error {
	data, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("store: encoding result %s: %w", id, err)
	}
	key := resultKeyOf(id, fp)
	s.mu.Lock()
	seq, err := s.appendLocked(kindResult, key, data)
	s.mu.Unlock()
	if err != nil {
		return err
	}
	s.cache.put(key, data)
	return s.commitCtx(ctx, seq, "result", 1, int64(len(data)))
}

// PutResultBytesCtx stores an already-serialized result verbatim — the
// replication path, where a follower persists the owner's result JSON
// without a decode/re-encode round trip. The bytes must be a result
// encoding this store could have produced (DecodeResult validates on
// the way in).
func (s *Store) PutResultBytesCtx(ctx context.Context, id TraceID, fp string, data []byte) error {
	if _, err := DecodeResult(data); err != nil {
		return err
	}
	key := resultKeyOf(id, fp)
	s.mu.Lock()
	seq, err := s.appendLocked(kindResult, key, data)
	s.mu.Unlock()
	if err != nil {
		return err
	}
	s.cache.put(key, data)
	return s.commitCtx(ctx, seq, "result", 1, int64(len(data)))
}

// GetResultBytes returns the stored result encoding of (trace,
// fingerprint) without decoding it — the replication read path, where
// the bytes go straight back onto the wire. No hit/miss accounting.
func (s *Store) GetResultBytes(id TraceID, fp string) ([]byte, bool, error) {
	key := resultKeyOf(id, fp)
	s.mu.RLock()
	l, ok := s.index[key]
	s.mu.RUnlock()
	if !ok {
		return nil, false, nil
	}
	data, err := s.readValue(key, l)
	if err != nil {
		return nil, false, err
	}
	return data, true, nil
}

// PutExplanation stores the decision-provenance record of (trace,
// config fingerprint) — the same key scheme as results, under its own
// record kind, so explanation and result always pair up. It returns
// the serialized size, which feeds the explanation-size telemetry.
func (s *Store) PutExplanation(id TraceID, fp string, e *explain.Explanation) (int, error) {
	data, err := json.Marshal(e)
	if err != nil {
		return 0, fmt.Errorf("store: encoding explanation %s: %w", id, err)
	}
	key := explainKeyOf(id, fp)
	s.mu.Lock()
	seq, err := s.appendLocked(kindExplain, key, data)
	s.mu.Unlock()
	if err != nil {
		return 0, err
	}
	s.cache.put(key, data)
	if s.opts.Sync {
		if err := s.waitDurable(seq); err != nil {
			return 0, err
		}
	}
	return len(data), nil
}

// GetExplanation returns the stored explanation of (trace,
// fingerprint), reporting found-ness. Explanation lookups do not feed
// the result hit/miss counters.
func (s *Store) GetExplanation(id TraceID, fp string) (*explain.Explanation, bool, error) {
	key := explainKeyOf(id, fp)
	s.mu.RLock()
	l, ok := s.index[key]
	s.mu.RUnlock()
	if !ok {
		return nil, false, nil
	}
	data, err := s.readValue(key, l)
	if err != nil {
		return nil, false, err
	}
	var e explain.Explanation
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, false, fmt.Errorf("store: decoding explanation %s: %w", id, err)
	}
	return &e, true, nil
}

// HasExplanation reports whether an explanation is stored without
// reading it.
func (s *Store) HasExplanation(id TraceID, fp string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.index[explainKeyOf(id, fp)]
	return ok
}

// DecodeResult parses a stored result encoding and rehydrates the
// fields that do not survive JSON (the category set and the temporal
// kind are serialized as strings). Exported for the cluster tier,
// which ships result encodings between nodes and must decode them to
// index categories on replicas.
func DecodeResult(data []byte) (*core.Result, error) {
	return decodeResult(data)
}

// decodeResult parses a stored result and rehydrates the fields that
// do not survive JSON (the category set and the temporal kind are
// serialized as strings).
func decodeResult(data []byte) (*core.Result, error) {
	var res core.Result
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, fmt.Errorf("store: decoding result: %w", err)
	}
	res.Categories = category.NewSet()
	for _, l := range res.Labels {
		res.Categories.Add(category.Category(l))
	}
	res.Read.Temporal = temporalKindOf(res.Read.TemporalS)
	res.Write.Temporal = temporalKindOf(res.Write.TemporalS)
	return &res, nil
}

// temporalKindOf is the inverse of category.TemporalKind.String.
func temporalKindOf(s string) category.TemporalKind {
	for _, k := range category.TemporalKinds() {
		if k.String() == s {
			return k
		}
	}
	return category.Insignificant
}

// GetResult returns the stored categorization of (trace, fingerprint),
// reporting found-ness. Hits and misses feed Stats, the basis of the
// serving layer's cache hit-rate metrics.
func (s *Store) GetResult(id TraceID, fp string) (*core.Result, bool, error) {
	key := resultKeyOf(id, fp)
	s.mu.RLock()
	l, ok := s.index[key]
	s.mu.RUnlock()
	if !ok {
		s.misses.Add(1)
		return nil, false, nil
	}
	data, err := s.readValue(key, l)
	if err != nil {
		return nil, false, err
	}
	res, err := decodeResult(data)
	if err != nil {
		return nil, false, err
	}
	s.hits.Add(1)
	return res, true, nil
}

// HasResult reports whether a result is stored without reading it (no
// hit/miss accounting).
func (s *Store) HasResult(id TraceID, fp string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.index[resultKeyOf(id, fp)]
	return ok
}

// EachResult calls fn for every stored result under the given config
// fingerprint, in lexicographic trace-ID order (deterministic, so
// index rebuilds are reproducible). fn returning false stops early.
func (s *Store) EachResult(fp string, fn func(TraceID, *core.Result) bool) error {
	suffix := "/" + fp
	s.mu.RLock()
	keys := make([]string, 0, s.results)
	for k := range s.index {
		if strings.HasPrefix(k, "r/") && strings.HasSuffix(k, suffix) {
			keys = append(keys, k)
		}
	}
	s.mu.RUnlock()
	sort.Strings(keys)
	for _, key := range keys {
		s.mu.RLock()
		l, ok := s.index[key]
		s.mu.RUnlock()
		if !ok {
			continue
		}
		data, err := s.readValue(key, l)
		if err != nil {
			return err
		}
		res, err := decodeResult(data)
		if err != nil {
			return err
		}
		id := TraceID(strings.TrimSuffix(strings.TrimPrefix(key, "r/"), suffix))
		if !fn(id, res) {
			return nil
		}
	}
	return nil
}

// EachResultLabels streams the category labels of every live result
// under the given config fingerprint, in log order (NOT sorted — the
// caller orders). Where EachResult pays one random read plus a full
// result decode per key, this is one buffered sequential pass over
// the segments that JSON-decodes only the "categories" field: the
// index-rebuild fast path. The labels slice is reused between calls —
// fn must copy or convert it before returning. Superseded frames are
// skipped via the index. fn returning false stops early.
func (s *Store) EachResultLabels(fp string, fn func(TraceID, []string) bool) error {
	suffix := "/" + fp
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return fmt.Errorf("store: closed")
	}
	readers := make([]*os.File, len(s.readers))
	copy(readers, s.readers)
	activeSize := s.size
	s.mu.RUnlock()
	var frame []byte
	var labels struct {
		Labels []string `json:"categories"`
	}
	for si, r := range readers {
		seg := si + 1
		// Frames appended after the snapshot sit past these bounds and
		// are deliberately not visited.
		limit := activeSize
		if si != len(readers)-1 {
			info, err := r.Stat()
			if err != nil {
				return fmt.Errorf("store: stat segment %d: %w", seg, err)
			}
			limit = info.Size()
		}
		br := bufio.NewReaderSize(io.NewSectionReader(r, 0, limit), readaheadBytes)
		var off int64
		var hdr [frameHeaderLen]byte
		for off+frameHeaderLen <= limit {
			if _, err := io.ReadFull(br, hdr[:]); err != nil {
				return fmt.Errorf("store: reading segment %d at %d: %w", seg, off, err)
			}
			n := int64(binary.LittleEndian.Uint32(hdr[:]))
			if n < framePayloadMin || n > maxFrameLen || off+frameHeaderLen+n+frameCRCLen > limit {
				break // torn tail; recovery will drop it on next Open
			}
			if int64(cap(frame)) < n+frameCRCLen {
				frame = make([]byte, n+frameCRCLen)
			}
			buf := frame[:n+frameCRCLen]
			if _, err := io.ReadFull(br, buf); err != nil {
				return fmt.Errorf("store: reading segment %d frame at %d: %w", seg, off, err)
			}
			payload := buf[:n]
			kind := payload[0]
			keyLen := int(binary.LittleEndian.Uint16(payload[1:3]))
			if framePayloadMin+int64(keyLen) > n {
				break
			}
			if kind == kindResult {
				key := string(payload[3 : 3+keyLen])
				if strings.HasPrefix(key, "r/") && strings.HasSuffix(key, suffix) {
					valOff := off + frameHeaderLen + framePayloadMin + int64(keyLen)
					s.mu.RLock()
					l, live := s.index[key]
					s.mu.RUnlock()
					if live && l.seg == seg && l.valOff == valOff {
						doc := payload[framePayloadMin+keyLen:]
						var ok bool
						if labels.Labels, ok = scanCategories(doc, labels.Labels[:0]); !ok {
							labels.Labels = labels.Labels[:0]
							if err := json.Unmarshal(doc, &labels); err != nil {
								return fmt.Errorf("store: decoding result %q: %w", key, err)
							}
						}
						id := TraceID(strings.TrimSuffix(strings.TrimPrefix(key, "r/"), suffix))
						if !fn(id, labels.Labels) {
							return nil
						}
					}
				}
			}
			off += frameHeaderLen + n + frameCRCLen
		}
	}
	return nil
}

// EachTraceBlob streams every live trace blob in log order using
// buffered sequential segment reads: the bulk backfill path, one
// readahead pass over the log instead of one random read per trace.
// The blob slice is reused between calls — fn must copy or decode it
// before returning. Superseded frames (a key later rewritten) are
// skipped via the index. fn returning false stops early.
func (s *Store) EachTraceBlob(fn func(TraceID, []byte) bool) error {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return fmt.Errorf("store: closed")
	}
	readers := make([]*os.File, len(s.readers))
	copy(readers, s.readers)
	activeSize := s.size
	s.mu.RUnlock()
	var frame []byte
	for si, r := range readers {
		seg := si + 1
		// Frames appended after the snapshot sit past these bounds and
		// are deliberately not visited.
		limit := activeSize
		if si != len(readers)-1 {
			info, err := r.Stat()
			if err != nil {
				return fmt.Errorf("store: stat segment %d: %w", seg, err)
			}
			limit = info.Size()
		}
		br := bufio.NewReaderSize(io.NewSectionReader(r, 0, limit), readaheadBytes)
		var off int64
		var hdr [frameHeaderLen]byte
		for off+frameHeaderLen <= limit {
			if _, err := io.ReadFull(br, hdr[:]); err != nil {
				return fmt.Errorf("store: reading segment %d at %d: %w", seg, off, err)
			}
			n := int64(binary.LittleEndian.Uint32(hdr[:]))
			if n < framePayloadMin || n > maxFrameLen || off+frameHeaderLen+n+frameCRCLen > limit {
				break // torn tail; recovery will drop it on next Open
			}
			if int64(cap(frame)) < n+frameCRCLen {
				frame = make([]byte, n+frameCRCLen)
			}
			buf := frame[:n+frameCRCLen]
			if _, err := io.ReadFull(br, buf); err != nil {
				return fmt.Errorf("store: reading segment %d frame at %d: %w", seg, off, err)
			}
			payload := buf[:n]
			kind := payload[0]
			keyLen := int(binary.LittleEndian.Uint16(payload[1:3]))
			if framePayloadMin+int64(keyLen) > n {
				break
			}
			if kind == kindTrace {
				key := string(payload[3 : 3+keyLen])
				valOff := off + frameHeaderLen + framePayloadMin + int64(keyLen)
				s.mu.RLock()
				l, live := s.index[key]
				s.mu.RUnlock()
				if live && l.seg == seg && l.valOff == valOff {
					if !fn(TraceID(strings.TrimPrefix(key, "t/")), payload[framePayloadMin+keyLen:]) {
						return nil
					}
				}
			}
			off += frameHeaderLen + n + frameCRCLen
		}
	}
	return nil
}

// EachTraceID calls fn for every stored trace blob's content address,
// in lexicographic order. fn returning false stops early.
func (s *Store) EachTraceID(fn func(TraceID) bool) {
	s.mu.RLock()
	ids := make([]string, 0, s.traces)
	for k := range s.index {
		if strings.HasPrefix(k, "t/") {
			ids = append(ids, strings.TrimPrefix(k, "t/"))
		}
	}
	s.mu.RUnlock()
	sort.Strings(ids)
	for _, id := range ids {
		if !fn(TraceID(id)) {
			return
		}
	}
}

// Stats returns a point-in-time view of the store.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	st := Stats{
		Traces:           s.traces,
		Results:          s.results,
		Explanations:     s.explains,
		Segments:         len(s.readers),
		RecoveredFrames:  s.recoveredFrames,
		DroppedTailBytes: s.droppedTailBytes,
	}
	for i, r := range s.readers {
		if i == len(s.readers)-1 {
			st.DiskBytes += s.size
		} else if info, err := r.Stat(); err == nil {
			st.DiskBytes += info.Size()
		}
	}
	s.mu.RUnlock()
	st.CacheItems, st.CacheBytes = s.cache.stats()
	st.Hits = s.hits.Load()
	st.Misses = s.misses.Load()
	st.GroupSyncs = s.groupSyncs.Load()
	st.SyncedFrames = s.syncedFrames.Load()
	return st
}

// Sync flushes the active segment to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.active == nil || s.closed {
		return nil
	}
	return s.active.Sync()
}

// Close flushes and closes every file handle. The store must not be
// used afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	if s.active != nil {
		if err := s.active.Sync(); err != nil && first == nil {
			first = err
		}
		if err := s.active.Close(); err != nil && first == nil {
			first = err
		}
	}
	// Wake group-commit waiters: everything appended before Close is
	// covered by the final sync above.
	s.gc.mu.Lock()
	if first == nil && s.seq > s.gc.synced {
		s.syncedFrames.Add(s.seq - s.gc.synced)
		s.gc.synced = s.seq
	}
	s.gc.cond.Broadcast()
	s.gc.mu.Unlock()
	for _, r := range s.readers {
		if err := r.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
