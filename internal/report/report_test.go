package report

import (
	"strings"
	"testing"

	"github.com/mosaic-hpc/mosaic/internal/category"
	"github.com/mosaic-hpc/mosaic/internal/core"
	"github.com/mosaic-hpc/mosaic/internal/darshan"
	"github.com/mosaic-hpc/mosaic/internal/segment"
)

// resultWith fabricates a Result carrying the given categories.
func resultWith(id uint64, cats ...category.Category) *core.Result {
	res := &core.Result{
		JobID:      id,
		App:        "app",
		User:       "u",
		Categories: category.NewSet(cats...),
	}
	res.Labels = res.Categories.Strings()
	for c := range res.Categories {
		if c == category.Periodic(category.DirWrite) {
			res.Write.Groups = []segment.Group{{Count: 10, Period: 300, Magnitude: category.MagMinute, BusyRatio: 0.1}}
		}
		if c == category.Periodic(category.DirRead) {
			res.Read.Groups = []segment.Group{{Count: 8, Period: 20, Magnitude: category.MagSecond, BusyRatio: 0.1}}
		}
	}
	return res
}

func TestAggregatorRates(t *testing.T) {
	a := NewAggregator()
	a.Add(resultWith(1, category.Temporal(category.DirRead, category.OnStart)), 9)
	a.Add(resultWith(2, category.Temporal(category.DirRead, category.Insignificant)), 1)
	if a.Apps() != 2 || a.Runs() != 10 {
		t.Fatalf("apps=%d runs=%d", a.Apps(), a.Runs())
	}
	onStart := category.Temporal(category.DirRead, category.OnStart)
	if got := a.SingleRate(onStart); got != 0.5 {
		t.Fatalf("single rate = %g", got)
	}
	if got := a.AllRate(onStart); got != 0.9 {
		t.Fatalf("all rate = %g", got)
	}
}

func TestAggregatorTemporalityRows(t *testing.T) {
	a := NewAggregator()
	a.Add(resultWith(1, category.Temporal(category.DirRead, category.OnStart)), 1)
	a.Add(resultWith(2, category.Temporal(category.DirRead, category.Steady)), 1)
	a.Add(resultWith(3, category.Temporal(category.DirRead, category.AfterStart)), 1)
	a.Add(resultWith(4, category.Temporal(category.DirRead, category.BeforeEnd)), 1)
	single, _ := a.Temporality(category.DirRead)
	if single.OnStart != 0.25 || single.Steady != 0.25 {
		t.Fatalf("row = %+v", single)
	}
	if single.Others != 0.5 { // after_start + before_end
		t.Fatalf("others = %g", single.Others)
	}
}

func TestAggregatorPeriodicity(t *testing.T) {
	a := NewAggregator()
	a.Add(resultWith(1, category.Periodic(category.DirWrite)), 4)
	a.Add(resultWith(2), 6)
	single, all := a.Periodicity(category.DirWrite)
	if single.Periodic != 0.5 || single.NonPeriodic != 0.5 {
		t.Fatalf("single = %+v", single)
	}
	if all.Periodic != 0.4 {
		t.Fatalf("all = %+v", all)
	}
	if single.Magnitudes[category.MagMinute] != 0.5 {
		t.Fatalf("magnitudes = %v", single.Magnitudes)
	}
	if got := a.Periods(category.DirWrite); len(got) != 1 || got[0] != 300 {
		t.Fatalf("periods = %v", got)
	}
	if got := a.Periods(category.DirRead); len(got) != 0 {
		t.Fatalf("read periods = %v", got)
	}
}

func TestAggregatorMetadataDist(t *testing.T) {
	a := NewAggregator()
	a.Add(resultWith(1, category.MetaHighSpike), 3)
	a.Add(resultWith(2, category.MetaInsignificantLoad), 1)
	single, all := a.MetadataDist()
	if single[category.MetaHighSpike] != 0.5 || all[category.MetaHighSpike] != 0.75 {
		t.Fatalf("dist = %v / %v", single, all)
	}
}

func TestAggregatorCorrelations(t *testing.T) {
	a := NewAggregator()
	rs := category.Temporal(category.DirRead, category.OnStart)
	we := category.Temporal(category.DirWrite, category.OnEnd)
	ri := category.Temporal(category.DirRead, category.Insignificant)
	wi := category.Temporal(category.DirWrite, category.Insignificant)
	a.Add(resultWith(1, rs, we), 1)
	a.Add(resultWith(2, rs, we), 1)
	a.Add(resultWith(3, rs), 1)
	a.Add(resultWith(4, ri, wi), 1)
	a.Add(resultWith(5, ri, wi), 1)
	a.Add(resultWith(6, ri), 1)
	a.Add(resultWith(7, category.Periodic(category.DirWrite), category.PeriodicBusy(category.DirWrite, false)), 1)
	c := a.Correlations()
	if c.ReadStartWritesEnd < 0.66 || c.ReadStartWritesEnd > 0.67 {
		t.Fatalf("P(we|rs) = %g", c.ReadStartWritesEnd)
	}
	if c.InsigReadAlsoInsigWrite < 0.66 || c.InsigReadAlsoInsigWrite > 0.67 {
		t.Fatalf("P(wi|ri) = %g", c.InsigReadAlsoInsigWrite)
	}
	if c.PeriodicWriteLowBusy != 1 {
		t.Fatalf("P(low|periodic) = %g", c.PeriodicWriteLowBusy)
	}
}

func TestRenderers(t *testing.T) {
	a := NewAggregator()
	a.Add(resultWith(1,
		category.Temporal(category.DirRead, category.OnStart),
		category.Temporal(category.DirWrite, category.OnEnd),
		category.MetaHighSpike), 5)
	a.Add(resultWith(2,
		category.Temporal(category.DirRead, category.Insignificant),
		category.Temporal(category.DirWrite, category.Insignificant),
		category.Periodic(category.DirWrite),
		category.MetaInsignificantLoad), 2)

	var sb strings.Builder
	WriteTemporality(&sb, a)
	WritePeriodicity(&sb, a, category.DirWrite)
	WriteMetadata(&sb, a)
	WriteJaccard(&sb, a, 0.01)
	WriteHeatmap(&sb, a, 0)
	WriteCorrelations(&sb, a.Correlations())
	WriteFunnel(&sb, core.FunnelStats{Total: 10, Corrupted: 3, Valid: 7, UniqueApps: 2,
		ByReason: map[string]int{"bad_header": 3}})
	out := sb.String()
	for _, want := range []string{
		"Table III", "Table II", "Figure 4", "Figure 5", "Figure 3",
		"read_on_start", "metadata_high_spike", "bad_header",
		"Single run", "All runs",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q", want)
		}
	}
}

func TestWriteResult(t *testing.T) {
	res := resultWith(9,
		category.Temporal(category.DirWrite, category.OnEnd),
		category.Periodic(category.DirWrite))
	res.Write.Chunks = []float64{1, 2, 3, 4}
	res.Write.TemporalS = "on_end"
	var sb strings.Builder
	WriteResult(&sb, res)
	out := sb.String()
	for _, want := range []string{"job 9", "periodic group", "on_end", "chunk volumes"} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteResult missing %q in %q", want, out)
		}
	}
}

func TestBarAndCell(t *testing.T) {
	if bar(0.5, 10) != "#####....." {
		t.Fatalf("bar = %q", bar(0.5, 10))
	}
	if bar(-1, 4) != "...." || bar(2, 4) != "####" {
		t.Fatal("bar clamping")
	}
	if cell(0.01) != "." || cell(0.97) != "X" || cell(0.55) != "5" {
		t.Fatal("cell rendering")
	}
}

func TestWriteTimeline(t *testing.T) {
	j := &darshan.Job{
		JobID: 3, User: "u", Exe: "/bin/tl", NProcs: 4,
		Start: 0, End: 1000, Runtime: 1000,
	}
	for ts := 100.0; ts < 900; ts += 200 {
		j.Records = append(j.Records, darshan.FileRecord{
			Module: darshan.ModPOSIX, Path: "/c",
			C: darshan.Counters{
				Writes: 1, BytesWritten: 1 << 30,
				WriteStart: ts, WriteEnd: ts + 20,
			},
		})
	}
	cfg := core.DefaultConfig()
	res, err := core.Categorize(j, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	WriteTimeline(&sb, j, res, cfg)
	out := sb.String()
	for _, want := range []string{"writes (raw)", "writes (merged)", "W", "write chunks", "time axis"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
	if res.Write.Periodic() && !strings.Contains(out, "P") {
		t.Error("periodic group track missing")
	}
	// Nil result renders the merge tracks only.
	sb.Reset()
	WriteTimeline(&sb, j, nil, cfg)
	if !strings.Contains(sb.String(), "writes (merged)") {
		t.Error("nil-result timeline broken")
	}
}
