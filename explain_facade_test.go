package mosaic_test

import (
	"context"
	"strings"
	"testing"

	"github.com/mosaic-hpc/mosaic"
)

func TestCategorizeExplainedFacade(t *testing.T) {
	j := storeTestJobs(1)[0]
	res, expl, err := mosaic.CategorizeExplained(j, mosaic.DefaultConfig(), mosaic.ExplainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if expl == nil || expl.EvidenceCount() == 0 {
		t.Fatal("facade CategorizeExplained returned no evidence")
	}
	plain, err := mosaic.Categorize(j, mosaic.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Categories.Equal(plain.Categories) {
		t.Fatalf("explained categories %v != plain %v", res.Labels, plain.Labels)
	}
	if len(expl.Labels) != len(res.Labels) {
		t.Fatalf("explanation labels %v != result labels %v", expl.Labels, res.Labels)
	}

	var sb strings.Builder
	mosaic.RenderExplanation(&sb, expl)
	out := sb.String()
	if !strings.Contains(out, "labels:") || !strings.Contains(out, "evidence:") {
		t.Fatalf("rendered explanation incomplete:\n%s", out)
	}
	for _, l := range res.Labels {
		if !strings.Contains(out, l) {
			t.Fatalf("rendered explanation missing label %q:\n%s", l, out)
		}
	}
}

func TestOptionsExplainAttachesExplanations(t *testing.T) {
	jobs := telemetryJobs(9)
	explained, err := mosaic.AnalyzeJobsContext(context.Background(), jobs, mosaic.Options{
		Workers: 2, Explain: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(explained.Apps) == 0 {
		t.Fatal("no apps analyzed")
	}
	for i, a := range explained.Apps {
		if a.Explanation == nil || a.Explanation.EvidenceCount() == 0 {
			t.Fatalf("app %d (%s): Explain run missing explanation", i, a.Result.App)
		}
	}

	plain, err := mosaic.AnalyzeJobsContext(context.Background(), jobs, mosaic.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range plain.Apps {
		if a.Explanation != nil {
			t.Fatalf("app %d (%s): explanation collected without Explain", i, a.Result.App)
		}
		if !a.Result.Categories.Equal(explained.Apps[i].Result.Categories) {
			t.Fatalf("app %d (%s): explained run changed categories", i, a.Result.App)
		}
	}
}

// TestStoreCountersExported: a run with both Store and Telemetry
// exports the warm/cold counters, and they accumulate across runs.
func TestStoreCountersExported(t *testing.T) {
	st, err := mosaic.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	tel := mosaic.NewTelemetry(mosaic.TelemetryConfig{})
	jobs := storeTestJobs(3)

	expo := func() string {
		var sb strings.Builder
		if err := tel.Registry().WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}

	// Cold run: everything is a miss.
	if _, err := mosaic.AnalyzeJobsContext(context.Background(), jobs,
		mosaic.Options{Store: st, Telemetry: tel}); err != nil {
		t.Fatal(err)
	}
	out := expo()
	if !strings.Contains(out, "mosaic_store_warm_total 0") {
		t.Fatalf("cold run warm counter:\n%s", out)
	}
	if !strings.Contains(out, "mosaic_store_cold_total 3") {
		t.Fatalf("cold run cold counter:\n%s", out)
	}

	// Warm run: counters accumulate on the same registry.
	if _, err := mosaic.AnalyzeJobsContext(context.Background(), jobs,
		mosaic.Options{Store: st, Telemetry: tel}); err != nil {
		t.Fatal(err)
	}
	out = expo()
	if !strings.Contains(out, "mosaic_store_warm_total 3") {
		t.Fatalf("warm run warm counter:\n%s", out)
	}
	if !strings.Contains(out, "mosaic_store_cold_total 3") {
		t.Fatalf("warm run cold counter:\n%s", out)
	}
}

// A store-backed explained run persists explanations, so a second run
// is warm for both the result and its provenance.
func TestOptionsExplainWithStoreWarm(t *testing.T) {
	st, err := mosaic.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	jobs := storeTestJobs(2)
	opts := mosaic.Options{Store: st, Explain: true}

	cold, err := mosaic.AnalyzeJobsContext(context.Background(), jobs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st.Stats().Explanations != 2 {
		t.Fatalf("explanations stored = %d, want 2", st.Stats().Explanations)
	}
	warm, err := mosaic.AnalyzeJobsContext(context.Background(), jobs, opts)
	if err != nil {
		t.Fatal(err)
	}
	s := st.Stats()
	if s.Hits != 2 || s.Misses != 2 {
		t.Fatalf("explained warm run: hits=%d misses=%d, want 2/2", s.Hits, s.Misses)
	}
	for i := range warm.Apps {
		if warm.Apps[i].Explanation == nil {
			t.Fatalf("warm app %d lost its explanation", i)
		}
		if warm.Apps[i].Explanation.EvidenceCount() != cold.Apps[i].Explanation.EvidenceCount() {
			t.Fatalf("warm app %d explanation differs from cold", i)
		}
	}
}
