package core

import (
	"fmt"

	"github.com/mosaic-hpc/mosaic/internal/category"
	"github.com/mosaic-hpc/mosaic/internal/darshan"
	"github.com/mosaic-hpc/mosaic/internal/explain"
	"github.com/mosaic-hpc/mosaic/internal/interval"
	"github.com/mosaic-hpc/mosaic/internal/segment"
)

// CategorizeExplained is Categorize plus decision provenance: alongside
// the Result it returns an explain.Explanation recording, for every
// category of the closed taxonomy, the rule evaluations that assigned or
// rejected it — preprocessing funnel, temporal chunk volumes and the
// dominance comparisons actually evaluated, every Mean Shift cluster
// with its verdict, period-magnitude bucketing, busy-time ratios, and
// the metadata spike/density statistics.
//
// The labels are guaranteed identical to Categorize's for the same job
// and config: explanation is collected on the side, never consulted by
// the detectors.
func CategorizeExplained(j *darshan.Job, cfg Config, opts explain.Options) (*Result, *explain.Explanation, error) {
	o := opts.Normalized()
	ex := &explainState{
		opts: o,
		exp: &explain.Explanation{
			JobID:       j.JobID,
			App:         j.AppName(),
			User:        j.User,
			Runtime:     j.Runtime,
			Fingerprint: cfg.Fingerprint(),
			Margin:      o.Margin,
		},
	}
	res, err := categorize(j, cfg, ex)
	if err != nil {
		return nil, nil, err
	}
	return res, ex.exp, nil
}

// explainState is the per-run evidence collector threaded through
// categorize. A nil *explainState disables collection entirely.
type explainState struct {
	opts explain.Options
	exp  *explain.Explanation
}

// direction opens the evidence section of one direction. Safe on a nil
// receiver (returns nil, which disables per-direction collection).
func (ex *explainState) direction(dir category.Direction, dxt bool) *dirExplain {
	if ex == nil {
		return nil
	}
	d := &explain.Direction{Direction: dir.String()}
	d.Preprocess.DXT = dxt
	if dir == category.DirRead {
		ex.exp.Read = d
	} else {
		ex.exp.Write = d
	}
	return &dirExplain{st: ex, dir: dir, d: d}
}

// finish seals the explanation once the result is complete.
func (ex *explainState) finish(res *Result) {
	ex.exp.Labels = append([]string(nil), res.Labels...)
}

// dirExplain collects the evidence of a single direction.
type dirExplain struct {
	st  *explainState
	dir category.Direction
	d   *explain.Direction
}

// emit appends a fully built evidence entry.
func (dx *dirExplain) emit(ev explain.Evidence) {
	ev.Direction = dx.d.Direction
	dx.d.Evidence = append(dx.d.Evidence, ev)
}

// rule appends an evidence entry with the near-miss flag derived from
// the configured margin.
func (dx *dirExplain) rule(axis, rule string, cat category.Category, value float64, op string, threshold float64, pass bool, detail string) {
	dx.emit(evidence(dx.st.opts.Margin, axis, rule, cat, value, op, threshold, pass, detail))
}

// evidence builds one entry; margin <= 0 disables the near-miss check.
func evidence(margin float64, axis, rule string, cat category.Category, value float64, op string, threshold float64, pass bool, detail string) explain.Evidence {
	out := explain.Outcome(explain.Fail)
	if pass {
		out = explain.Pass
	}
	return explain.Evidence{
		Axis:      axis,
		Rule:      rule,
		Category:  string(cat),
		Value:     value,
		Op:        op,
		Threshold: threshold,
		Outcome:   out,
		NearMiss:  explain.NearMiss(margin, value, threshold),
		Detail:    detail,
	}
}

// preprocess records the merging funnel. Merged-op counts and byte/busy
// totals are completed in temporality once the report is filled.
func (dx *dirExplain) preprocess(raw, clipped, concurrent int, runtime float64, cfg *Config) {
	p := &dx.d.Preprocess
	p.RawOps = raw
	p.ClippedOps = clipped
	p.ConcurrentOps = concurrent
	p.GapRuntimeSeconds = cfg.MergeRuntimeFraction * runtime
	p.NeighborFraction = cfg.MergeNeighborFraction
}

// temporality records the chunk volumes, the dominance comparisons that
// were actually evaluated, and one classifiable rule per temporality
// category of the direction.
func (dx *dirExplain) temporality(rep *DirectionReport, tr *temporalTrace, cfg *Config) {
	p := &dx.d.Preprocess
	p.MergedOps = rep.MergedOps
	p.TotalBytes = rep.TotalBytes
	p.BusySeconds = rep.BusyTime
	dx.d.Chunks = append([]float64(nil), rep.Chunks...)
	dx.d.CV = tr.CV
	dx.d.Significant = rep.Significant()

	// Significance: the one rule evaluated on every direction. It is the
	// assignment rule of <dir>_insignificant and, failing, the gate that
	// let the rest of the axis run.
	sig := float64(cfg.SignificanceBytes)
	dx.rule(explain.AxisTemporality, "significance",
		category.Temporal(dx.dir, category.Insignificant),
		float64(rep.TotalBytes), "<", sig, rep.Temporal == category.Insignificant, "total bytes vs significance threshold")
	if !dx.d.Significant {
		return
	}

	// Steady: coefficient of variation of the chunk volumes.
	dx.rule(explain.AxisTemporality, "steady_cv",
		category.Temporal(dx.dir, category.Steady),
		tr.CV, "<", cfg.SteadyCV, rep.Temporal == category.Steady, "chunk-volume coefficient of variation")

	// The dominance comparisons actually evaluated (top-K set vs rest),
	// in evaluation order. No category: these are the audit trail of the
	// search, not an assignment rule.
	for _, c := range tr.Checks {
		dx.rule(explain.AxisTemporality, "chunk_dominance", "",
			c.MinDom, ">", cfg.DominanceFactor*c.MaxRest, c.Pass,
			fmt.Sprintf("top-%d chunk set vs rest", c.K))
	}
	if tr.Weak {
		best := 0
		for i, v := range rep.Chunks {
			if v > rep.Chunks[best] {
				best = i
			}
		}
		dx.emit(explain.Evidence{
			Axis: explain.AxisTemporality, Rule: "weak_dominance",
			Value: rep.Chunks[best], Op: ">=", Threshold: 0,
			Outcome: explain.Pass,
			Detail:  fmt.Sprintf("no dominant set; largest chunk %d decided", best),
		})
	}

	// One classifiable rule per location kind: would the kind's defining
	// chunk set dominate the rest? The outcome is authoritative (pass iff
	// the kind was assigned); the operands show how close the set came.
	for _, k := range []category.TemporalKind{
		category.OnStart, category.OnEnd, category.AfterStart,
		category.BeforeEnd, category.AfterStartBeforeEnd,
	} {
		set := kindChunkSet(k, len(rep.Chunks))
		cat := category.Temporal(dx.dir, k)
		pass := rep.Temporal == k
		if len(set) == 0 || len(set) == len(rep.Chunks) {
			dx.emit(explain.Evidence{
				Axis: explain.AxisTemporality, Rule: "chunk_set_dominance",
				Category: string(cat), Op: ">",
				Outcome: explain.Fail,
				Detail:  fmt.Sprintf("kind unreachable with %d chunks", len(rep.Chunks)),
			})
			continue
		}
		minSet, maxRest := setOperands(rep.Chunks, set)
		dx.rule(explain.AxisTemporality, "chunk_set_dominance", cat,
			minSet, ">", cfg.DominanceFactor*maxRest, pass,
			fmt.Sprintf("min(chunks%v) vs %g×max(rest)", set, cfg.DominanceFactor))
	}
}

// kindChunkSet returns the canonical chunk-index set whose dominance
// yields the given location kind under kindForChunkSet, or nil when the
// kind is unreachable with n chunks.
func kindChunkSet(k category.TemporalKind, n int) []int {
	switch k {
	case category.OnStart:
		return []int{0}
	case category.OnEnd:
		if n < 2 {
			return nil
		}
		return []int{n - 1}
	case category.AfterStart:
		var set []int
		for i := 1; i < n/2; i++ {
			set = append(set, i)
		}
		return set
	case category.BeforeEnd:
		var set []int
		for i := n / 2; i < n-1; i++ {
			if i >= 1 {
				set = append(set, i)
			}
		}
		return set
	case category.AfterStartBeforeEnd:
		var set []int
		for i := 1; i < n-1; i++ {
			set = append(set, i)
		}
		return set
	default:
		return nil
	}
}

// setOperands returns the smallest volume inside the set and the largest
// outside it.
func setOperands(chunks []float64, set []int) (minSet, maxRest float64) {
	in := make(map[int]bool, len(set))
	for _, i := range set {
		in[i] = true
	}
	first := true
	for i, v := range chunks {
		if in[i] {
			if first || v < minSet {
				minSet = v
				first = false
			}
		} else if v > maxRest {
			maxRest = v
		}
	}
	return minSet, maxRest
}

// periodicity records the detector evidence of a significant direction:
// the segment features, every cluster with its verdict, and one
// classifiable rule per periodicity category.
func (dx *dirExplain) periodicity(merged []interval.Interval, rep *DirectionReport, tr *periodicityTrace, runtime float64, cfg *Config) {
	dx.d.Detector = tr.Detector
	dx.d.Bandwidth = cfg.MeanShiftBandwidth
	if tr.Spectral.Period > 0 {
		dx.d.SpectralPeriod = tr.Spectral.Period
	}

	segs := segment.Split(merged, runtime)
	dx.d.SegmentCount = len(segs)
	keep := len(segs)
	if keep > dx.st.opts.MaxSegments {
		keep = dx.st.opts.MaxSegments
		dx.d.SegmentsTruncated = true
	}
	dx.d.Segments = make([]explain.SegmentFeature, keep)
	for i := 0; i < keep; i++ {
		dx.d.Segments[i] = explain.SegmentFeature{Duration: segs[i].Duration, Bytes: segs[i].Op.Bytes}
	}

	// Every cluster the detector considered, with per-cluster size and
	// coverage rules carrying the group-promotion thresholds. The
	// coverage threshold mirrors segment.Detect's clamp.
	minCov := cfg.MinGroupCoverage
	if minCov <= 0 {
		minCov = 0.5
	}
	for i, c := range tr.Seg.Clusters {
		dx.d.Clusters = append(dx.d.Clusters, explain.Cluster{
			Size:             c.Size,
			Period:           c.Period,
			MeanBytes:        c.MeanBytes,
			CentroidDuration: c.CentroidDuration,
			CentroidVolume:   c.CentroidVolume,
			SpreadDuration:   c.SpreadDuration,
			SpreadVolume:     c.SpreadVolume,
			Coverage:         c.Coverage,
			Accepted:         c.Accepted,
			Reason:           clusterReason(c.Reason),
		})
		dx.rule(explain.AxisPeriodicity, "group_size", "",
			float64(c.Size), ">=", float64(cfg.MinGroupSize), c.Size >= cfg.MinGroupSize,
			fmt.Sprintf("cluster %d", i))
		if c.Size >= cfg.MinGroupSize {
			dx.rule(explain.AxisPeriodicity, "group_coverage", "",
				c.Coverage, ">=", minCov, c.Reason != segment.ClusterRejectedCoverage,
				fmt.Sprintf("cluster %d", i))
		}
	}

	// The summary rule of <dir>_periodic: at least one promoted group.
	periodic := len(rep.Groups) > 0
	dx.emit(explain.Evidence{
		Axis: explain.AxisPeriodicity, Rule: "periodic_groups",
		Category: string(category.Periodic(dx.dir)),
		Value:    float64(len(rep.Groups)), Op: ">=", Threshold: 1,
		Outcome: outcome(periodic),
		Detail:  "periodic groups promoted",
	})

	if !periodic {
		// Dependent categories cannot be assigned without a group; record
		// the failing prerequisite for each so "why not X" has an answer.
		for _, m := range []category.PeriodMagnitude{
			category.MagSecond, category.MagMinute, category.MagHour, category.MagDayOrMore,
		} {
			dx.requiresPeriodic(category.PeriodicMagnitude(dx.dir, m))
		}
		dx.requiresPeriodic(category.PeriodicBusy(dx.dir, false))
		dx.requiresPeriodic(category.PeriodicBusy(dx.dir, true))
		return
	}

	// Magnitude bucketing: one rule per magnitude. For assigned buckets
	// the operand is the matching group's period; for the rest, the
	// dominant period — near-misses against the bucket edges flag
	// periods about to change magnitude.
	dominant := rep.DominantPeriod()
	for _, m := range []category.PeriodMagnitude{
		category.MagSecond, category.MagMinute, category.MagHour, category.MagDayOrMore,
	} {
		period, ok := 0.0, false
		for _, g := range rep.Groups {
			if g.Magnitude == m {
				period, ok = g.Period, true
				break
			}
		}
		if !ok {
			period = dominant
		}
		lo, hi := magnitudeBounds(m)
		near := explain.NearMiss(dx.st.opts.Margin, period, lo)
		if hi > 0 {
			near = near || explain.NearMiss(dx.st.opts.Margin, period, hi)
		}
		detail := fmt.Sprintf("period vs bucket [%g,%g)s", lo, hi)
		if hi <= 0 {
			detail = fmt.Sprintf("period vs bucket [%g,∞)s", lo)
		}
		dx.emit(explain.Evidence{
			Axis: explain.AxisPeriodicity, Rule: "period_magnitude",
			Category: string(category.PeriodicMagnitude(dx.dir, m)),
			Value:    period, Op: "in", Threshold: lo,
			Outcome: outcome(ok), NearMiss: near, Detail: detail,
		})
	}

	// Busy-time split: low is assigned when some group stays under the
	// threshold, high when some group crosses it.
	minBusy, maxBusy := rep.Groups[0].BusyRatio, rep.Groups[0].BusyRatio
	for _, g := range rep.Groups[1:] {
		if g.BusyRatio < minBusy {
			minBusy = g.BusyRatio
		}
		if g.BusyRatio > maxBusy {
			maxBusy = g.BusyRatio
		}
	}
	dx.rule(explain.AxisPeriodicity, "busy_ratio",
		category.PeriodicBusy(dx.dir, false),
		minBusy, "<", segment.BusyHighThreshold, minBusy < segment.BusyHighThreshold,
		"smallest group busy ratio")
	dx.rule(explain.AxisPeriodicity, "busy_ratio",
		category.PeriodicBusy(dx.dir, true),
		maxBusy, ">=", segment.BusyHighThreshold, maxBusy >= segment.BusyHighThreshold,
		"largest group busy ratio")
}

// requiresPeriodic records the failing prerequisite of a
// periodicity-dependent category on a non-periodic direction.
func (dx *dirExplain) requiresPeriodic(cat category.Category) {
	dx.emit(explain.Evidence{
		Axis: explain.AxisPeriodicity, Rule: "requires_periodic",
		Category: string(cat),
		Value:    0, Op: ">=", Threshold: 1,
		Outcome: explain.Fail,
		Detail:  "no periodic group on this direction",
	})
}

// clusterReason maps the segment package's verdict constants to the
// explain package's human-oriented ones.
func clusterReason(r string) string {
	switch r {
	case segment.ClusterRejectedSize:
		return explain.ClusterRejectedSize
	case segment.ClusterRejectedCoverage:
		return explain.ClusterRejectedCoverage
	default:
		return explain.ClusterAccepted
	}
}

// magnitudeBounds returns the half-open period bucket [lo, hi) of a
// magnitude in seconds; hi <= 0 means unbounded.
func magnitudeBounds(m category.PeriodMagnitude) (lo, hi float64) {
	switch m {
	case category.MagSecond:
		return 0, 60
	case category.MagMinute:
		return 60, 3600
	case category.MagHour:
		return 3600, 86400
	case category.MagDayOrMore:
		return 86400, 0
	default:
		return 0, 0
	}
}

func outcome(pass bool) explain.Outcome {
	if pass {
		return explain.Pass
	}
	return explain.Fail
}

// meta records the metadata-axis statistics and one classifiable rule
// per metadata category.
func (ex *explainState) meta(j *darshan.Job, res *Result, cfg *Config) {
	rep := res.Meta
	m := &explain.Metadata{
		TotalOps:   rep.TotalOps,
		PeakRate:   rep.PeakRate,
		MeanRate:   rep.MeanRate,
		SpikeCount: rep.SpikeCount,
		HighSpikes: rep.HighSpikes,
	}
	ex.exp.Meta = m
	margin := ex.opts.Margin
	add := func(ev explain.Evidence) { m.Evidence = append(m.Evidence, ev) }

	// metadata_insignificant_load has two assignment paths: fewer
	// requests than ranks, or traffic that crosses no pattern threshold.
	add(evidence(margin, explain.AxisMetadata, "meta_volume",
		category.MetaInsignificantLoad,
		float64(rep.TotalOps), "<", float64(j.NProcs),
		rep.TotalOps < int64(j.NProcs), "metadata requests vs rank count"))

	patterns := 0
	for _, c := range []category.Category{
		category.MetaHighSpike, category.MetaMultipleSpikes, category.MetaHighDensity,
	} {
		if res.Categories.Has(c) {
			patterns++
		}
	}
	add(explain.Evidence{
		Axis: explain.AxisMetadata, Rule: "meta_no_pattern",
		Category: string(category.MetaInsignificantLoad),
		Value:    float64(patterns), Op: "<", Threshold: 1,
		Outcome: outcome(patterns == 0),
		Detail:  "pattern categories assigned",
	})

	add(evidence(margin, explain.AxisMetadata, "spike_high_rate",
		category.MetaHighSpike,
		rep.PeakRate, ">=", cfg.SpikeHighRate,
		res.Categories.Has(category.MetaHighSpike), "peak one-second request rate"))
	add(evidence(margin, explain.AxisMetadata, "multiple_spikes",
		category.MetaMultipleSpikes,
		float64(rep.SpikeCount), ">=", float64(cfg.MultipleSpikes),
		res.Categories.Has(category.MetaMultipleSpikes), "seconds at or above spike rate"))
	add(evidence(margin, explain.AxisMetadata, "density_spikes",
		category.MetaHighDensity,
		float64(rep.SpikeCount), ">=", float64(cfg.MultipleSpikes),
		rep.SpikeCount >= cfg.MultipleSpikes, "high_density condition 1: spike count"))
	add(evidence(margin, explain.AxisMetadata, "density_mean_rate",
		category.MetaHighDensity,
		rep.MeanRate, ">=", cfg.DensityRate,
		rep.MeanRate >= cfg.DensityRate, "high_density condition 2: mean request rate"))
}
