package darshan

import (
	"encoding/json"
	"fmt"
	"io"
)

// JSON codec: a human-readable alternative to the binary container, used
// by the example programs and for interchange with external tools (e.g.
// feeding traces converted with darshan-parser output through a small
// script). The schema mirrors the Go model with snake_case keys.

type jsonCounters struct {
	Opens        int64   `json:"opens"`
	Closes       int64   `json:"closes"`
	Seeks        int64   `json:"seeks"`
	Stats        int64   `json:"stats"`
	Reads        int64   `json:"reads"`
	Writes       int64   `json:"writes"`
	BytesRead    int64   `json:"bytes_read"`
	BytesWritten int64   `json:"bytes_written"`
	OpenStart    float64 `json:"open_start"`
	OpenEnd      float64 `json:"open_end"`
	ReadStart    float64 `json:"read_start"`
	ReadEnd      float64 `json:"read_end"`
	WriteStart   float64 `json:"write_start"`
	WriteEnd     float64 `json:"write_end"`
	CloseStart   float64 `json:"close_start"`
	CloseEnd     float64 `json:"close_end"`
}

type jsonDXTEvent struct {
	Start  float64 `json:"start"`
	End    float64 `json:"end"`
	Offset int64   `json:"offset"`
	Length int64   `json:"length"`
}

type jsonRecord struct {
	Module    string         `json:"module"`
	Path      string         `json:"path"`
	Rank      int32          `json:"rank"`
	Counters  jsonCounters   `json:"counters"`
	DXTReads  []jsonDXTEvent `json:"dxt_reads,omitempty"`
	DXTWrites []jsonDXTEvent `json:"dxt_writes,omitempty"`
}

func toJSONDXT(events []DXTEvent) []jsonDXTEvent {
	if len(events) == 0 {
		return nil
	}
	out := make([]jsonDXTEvent, len(events))
	for i, e := range events {
		out[i] = jsonDXTEvent{Start: e.Start, End: e.End, Offset: e.Offset, Length: e.Length}
	}
	return out
}

func fromJSONDXT(events []jsonDXTEvent) []DXTEvent {
	if len(events) == 0 {
		return nil
	}
	out := make([]DXTEvent, len(events))
	for i, e := range events {
		out[i] = DXTEvent{Start: e.Start, End: e.End, Offset: e.Offset, Length: e.Length}
	}
	return out
}

type jsonJob struct {
	JobID    uint64            `json:"job_id"`
	UID      uint32            `json:"uid"`
	User     string            `json:"user"`
	Exe      string            `json:"exe"`
	NProcs   int32             `json:"nprocs"`
	Start    int64             `json:"start_time"`
	End      int64             `json:"end_time"`
	Runtime  float64           `json:"runtime"`
	Metadata map[string]string `json:"metadata,omitempty"`
	Records  []jsonRecord      `json:"records"`
}

func moduleFromString(s string) (Module, error) {
	switch s {
	case "POSIX":
		return ModPOSIX, nil
	case "MPI-IO", "MPIIO":
		return ModMPIIO, nil
	case "STDIO":
		return ModSTDIO, nil
	default:
		return 0, fmt.Errorf("darshan: unknown module %q", s)
	}
}

func toJSONJob(j *Job) *jsonJob {
	out := &jsonJob{
		JobID:    j.JobID,
		UID:      j.UID,
		User:     j.User,
		Exe:      j.Exe,
		NProcs:   j.NProcs,
		Start:    j.Start,
		End:      j.End,
		Runtime:  j.Runtime,
		Metadata: j.Metadata,
		Records:  make([]jsonRecord, len(j.Records)),
	}
	for i := range j.Records {
		r := &j.Records[i]
		out.Records[i] = jsonRecord{
			Module:    r.Module.String(),
			Path:      r.Path,
			Rank:      r.Rank,
			DXTReads:  toJSONDXT(r.DXTReads),
			DXTWrites: toJSONDXT(r.DXTWrites),
			Counters: jsonCounters{
				Opens: r.C.Opens, Closes: r.C.Closes, Seeks: r.C.Seeks, Stats: r.C.Stats,
				Reads: r.C.Reads, Writes: r.C.Writes,
				BytesRead: r.C.BytesRead, BytesWritten: r.C.BytesWritten,
				OpenStart: r.C.OpenStart, OpenEnd: r.C.OpenEnd,
				ReadStart: r.C.ReadStart, ReadEnd: r.C.ReadEnd,
				WriteStart: r.C.WriteStart, WriteEnd: r.C.WriteEnd,
				CloseStart: r.C.CloseStart, CloseEnd: r.C.CloseEnd,
			},
		}
	}
	return out
}

func fromJSONJob(in *jsonJob) (*Job, error) {
	j := &Job{
		JobID:    in.JobID,
		UID:      in.UID,
		User:     in.User,
		Exe:      in.Exe,
		NProcs:   in.NProcs,
		Start:    in.Start,
		End:      in.End,
		Runtime:  in.Runtime,
		Metadata: in.Metadata,
		Records:  make([]FileRecord, len(in.Records)),
	}
	for i := range in.Records {
		r := &in.Records[i]
		mod, err := moduleFromString(r.Module)
		if err != nil {
			return nil, fmt.Errorf("record %d: %w", i, err)
		}
		c := r.Counters
		j.Records[i] = FileRecord{
			Module:    mod,
			Path:      r.Path,
			Rank:      r.Rank,
			DXTReads:  fromJSONDXT(r.DXTReads),
			DXTWrites: fromJSONDXT(r.DXTWrites),
			C: Counters{
				Opens: c.Opens, Closes: c.Closes, Seeks: c.Seeks, Stats: c.Stats,
				Reads: c.Reads, Writes: c.Writes,
				BytesRead: c.BytesRead, BytesWritten: c.BytesWritten,
				OpenStart: c.OpenStart, OpenEnd: c.OpenEnd,
				ReadStart: c.ReadStart, ReadEnd: c.ReadEnd,
				WriteStart: c.WriteStart, WriteEnd: c.WriteEnd,
				CloseStart: c.CloseStart, CloseEnd: c.CloseEnd,
			},
		}
	}
	return j, nil
}

// WriteJSON encodes the job as indented JSON.
func WriteJSON(w io.Writer, j *Job) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(toJSONJob(j))
}

// ReadJSON decodes one job from JSON.
func ReadJSON(r io.Reader) (*Job, error) {
	var in jsonJob
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("darshan: decoding JSON job: %w", err)
	}
	return fromJSONJob(&in)
}

// MarshalJob returns the JSON encoding of a job as bytes.
func MarshalJob(j *Job) ([]byte, error) {
	return json.MarshalIndent(toJSONJob(j), "", "  ")
}

// UnmarshalJob parses a JSON-encoded job.
func UnmarshalJob(data []byte) (*Job, error) {
	var in jsonJob
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("darshan: decoding JSON job: %w", err)
	}
	return fromJSONJob(&in)
}
