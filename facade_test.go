package mosaic_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"github.com/mosaic-hpc/mosaic"
)

func TestAnonymizeFacade(t *testing.T) {
	job := &mosaic.Job{
		JobID: 1, User: "alice", Exe: "/apps/bin/secret-code", NProcs: 4,
		Runtime: 100, End: 100,
		Metadata: map[string]string{"note": "private"},
		Records: []mosaic.FileRecord{{
			Module: mosaic.ModPOSIX, Path: "/scratch/alice/input.dat",
			C: mosaic.Counters{Reads: 1, BytesRead: 1 << 20, ReadStart: 1, ReadEnd: 2},
		}},
	}
	mosaic.Anonymize(job, "salt")
	if job.User == "alice" || strings.Contains(job.Exe, "secret") {
		t.Fatal("identity leaked")
	}
	if job.Metadata != nil {
		t.Fatal("metadata kept")
	}
	if strings.Contains(job.Records[0].Path, "input") {
		t.Fatal("path leaked")
	}
	if err := mosaic.Validate(job); err != nil {
		t.Fatalf("anonymized job invalid: %v", err)
	}
}

func TestWriteHeatmapFacade(t *testing.T) {
	agg := mosaic.NewAggregator()
	res := mosaic.MustCategorize(&mosaic.Job{
		JobID: 1, User: "u", Exe: "/bin/a", NProcs: 4, Runtime: 1000, End: 1000,
		Records: []mosaic.FileRecord{{
			Module: mosaic.ModPOSIX, Path: "/f",
			C: mosaic.Counters{Reads: 10, BytesRead: 1 << 30, ReadStart: 5, ReadEnd: 50},
		}},
	}, mosaic.DefaultConfig())
	agg.Add(res, 3)
	var buf bytes.Buffer
	mosaic.WriteHeatmap(&buf, agg, 0)
	if !strings.Contains(buf.String(), "read_on_start") {
		t.Fatalf("heatmap missing category:\n%s", buf.String())
	}
}

func TestWriteTimelineFacade(t *testing.T) {
	job := &mosaic.Job{
		JobID: 2, User: "u", Exe: "/bin/b", NProcs: 4, Runtime: 1000, End: 1000,
		Records: []mosaic.FileRecord{{
			Module: mosaic.ModPOSIX, Path: "/f",
			C: mosaic.Counters{Writes: 5, BytesWritten: 1 << 30, WriteStart: 900, WriteEnd: 950},
		}},
	}
	res := mosaic.MustCategorize(job, mosaic.DefaultConfig())
	var buf bytes.Buffer
	mosaic.WriteTimeline(&buf, job, res, mosaic.DefaultConfig())
	if !strings.Contains(buf.String(), "writes (merged)") {
		t.Fatal("timeline facade broken")
	}
}

func TestCategorizeAllContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	jobs := []*mosaic.Job{{JobID: 1, User: "u", Exe: "/bin/c", NProcs: 1, Runtime: 10, End: 10}}
	if _, err := mosaic.CategorizeAll(ctx, jobs, mosaic.Options{}); err == nil {
		t.Fatal("cancelled context not surfaced")
	}
}

func TestMustCategorizePanicsOnPipelineFailure(t *testing.T) {
	// MustCategorize never panics on structurally valid jobs; exercise the
	// non-panic path and the ListCorpus facade together.
	dir := t.TempDir()
	if paths, err := mosaic.ListCorpus(dir); err != nil || len(paths) != 0 {
		t.Fatalf("empty corpus: %v %v", paths, err)
	}
}

func TestAllCategoriesFacade(t *testing.T) {
	all := mosaic.AllCategories()
	if len(all) != 32 {
		t.Fatalf("taxonomy size = %d, want 32", len(all))
	}
	if mosaic.PeriodicMagnitudeCat(mosaic.DirWrite, 2) == "" {
		t.Fatal("magnitude constructor broken")
	}
}

func TestTruthFacade(t *testing.T) {
	profile := mosaic.DefaultCorpusProfile()
	profile.Apps = 5
	profile.CorruptionRate = 0
	corpus := mosaic.PlanCorpus(profile)
	run := corpus.GenerateRun(corpus.Apps[0], 0)
	if mosaic.Truth(run.Job) == nil {
		t.Fatal("truth missing on generated trace")
	}
	if run.Job.Metadata[mosaic.TruthKey] == "" {
		t.Fatal("truth key missing")
	}
}

func buildFacadeCorpus(t *testing.T, n int) []*mosaic.Job {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	jobs := make([]*mosaic.Job, 0, n)
	for i := 0; i < n; i++ {
		b := mosaic.NewTraceBuilder(rng, "user", "/bin/app", uint64(i+1), 8, 3600)
		b.Burst(mosaic.BurstSpec{At: 30, Duration: 60, Bytes: 1 << 30, Records: 4})
		jobs = append(jobs, b.Job())
	}
	return jobs
}

func TestAnalyzeJobsShimMatchesContextAPI(t *testing.T) {
	jobs := buildFacadeCorpus(t, 20)
	a1, err := mosaic.AnalyzeJobs(jobs, mosaic.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := mosaic.AnalyzeJobsContext(context.Background(), jobs, mosaic.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a1.Funnel.Total != a2.Funnel.Total || a1.Funnel.UniqueApps != a2.Funnel.UniqueApps {
		t.Fatalf("shim and context API disagree: %+v vs %+v", a1.Funnel, a2.Funnel)
	}
	if len(a1.Apps) != len(a2.Apps) {
		t.Fatalf("apps %d vs %d", len(a1.Apps), len(a2.Apps))
	}
}

func TestAnalyzeCorpusContextCancelled(t *testing.T) {
	dir := t.TempDir()
	for i, j := range buildFacadeCorpus(t, 5) {
		if err := mosaic.WriteTrace(filepath.Join(dir, fmt.Sprintf("t%d.mosd", i)), j); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := mosaic.AnalyzeCorpusContext(ctx, dir, mosaic.Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestAnalyzeCorpusContextObserver(t *testing.T) {
	dir := t.TempDir()
	for i, j := range buildFacadeCorpus(t, 6) {
		if err := mosaic.WriteTrace(filepath.Join(dir, fmt.Sprintf("t%d.mosd", i)), j); err != nil {
			t.Fatal(err)
		}
	}
	stats := mosaic.NewStageStats()
	a, err := mosaic.AnalyzeCorpusContext(context.Background(), dir, mosaic.Options{Observer: stats})
	if err != nil {
		t.Fatal(err)
	}
	if a.Funnel.Total != 6 {
		t.Fatalf("funnel total = %d, want 6", a.Funnel.Total)
	}
	if got := stats.Stage(mosaic.StageDecode).Out; got != 6 {
		t.Fatalf("decode out = %d, want 6", got)
	}
	if got := stats.Stage(mosaic.StageCategorize).Out; got != int64(len(a.Apps)) {
		t.Fatalf("categorize out = %d, want %d", got, len(a.Apps))
	}
}

func TestOptionsPartialConfigNotDiscarded(t *testing.T) {
	// A config with only one threshold set must be honored (sane-clamped),
	// not silently replaced by DefaultConfig — the old zero-value
	// comparison got this right only by accident of comparability.
	jobs := buildFacadeCorpus(t, 4)
	cfg := mosaic.Config{SignificanceBytes: 1 << 50} // absurdly high: everything insignificant
	a, err := mosaic.AnalyzeJobs(jobs, mosaic.Options{Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range a.Apps {
		if app.Result.Read.Significant() || app.Result.Write.Significant() {
			t.Fatal("partial config was discarded: significance threshold ignored")
		}
	}
}

func TestQueryIndexFacade(t *testing.T) {
	ix := mosaic.NewIndex()
	ix.Load([]mosaic.IndexEntry{
		{ID: mosaic.TraceID(strings.Repeat("a", 64)), Cats: mosaic.Set{"write_on_end": {}}},
		{ID: mosaic.TraceID(strings.Repeat("b", 64)), Cats: mosaic.Set{"read_on_start": {}}},
	})
	if err := mosaic.ParseQuery("write_on_end AND ("); err == nil {
		t.Fatal("unbalanced query accepted")
	}
	ids, err := ix.Query("write_on_end NOT read_on_start")
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != mosaic.TraceID(strings.Repeat("a", 64)) {
		t.Fatalf("query = %v", ids)
	}
	merged := mosaic.MergeSorted([]string{"a", "c"}, []string{"b", "c"})
	if strings.Join(merged, "") != "abc" {
		t.Fatalf("merge = %v", merged)
	}
}
