package darshan

import (
	"strings"
	"testing"
)

func TestAnonymizerStability(t *testing.T) {
	a := NewAnonymizer("salt-1")
	if a.User("alice") != a.User("alice") {
		t.Fatal("pseudonyms not stable")
	}
	if a.User("alice") == a.User("bob") {
		t.Fatal("distinct users collided")
	}
	b := NewAnonymizer("salt-2")
	if a.User("alice") == b.User("alice") {
		t.Fatal("different salts must give different pseudonyms")
	}
}

func TestAnonymizerDomainSeparation(t *testing.T) {
	a := NewAnonymizer("s")
	// The same raw value in different roles must not produce linkable
	// tokens.
	if a.token("user", "x") == a.token("path", "x") {
		t.Fatal("kind domains collided")
	}
}

func TestAnonymizePathKeepsMount(t *testing.T) {
	a := NewAnonymizer("s")
	p := a.Path("/scratch/alice/data/input.dat")
	if !strings.HasPrefix(p, "/scratch/") {
		t.Fatalf("mount point lost: %q", p)
	}
	if strings.Contains(p, "alice") || strings.Contains(p, "input") {
		t.Fatalf("identifying parts leaked: %q", p)
	}
	if a.Path("relative") == "" {
		t.Fatal("degenerate path")
	}
}

func TestAnonymizeExeStripsArguments(t *testing.T) {
	a := NewAnonymizer("s")
	p1 := a.Exe("/apps/bin/lammps -in secret_input.lmp")
	p2 := a.Exe("/apps/bin/lammps -in other_input.lmp")
	if p1 != p2 {
		t.Fatal("argument stripping failed: same binary should map to same pseudonym")
	}
	if strings.Contains(p1, "lammps") {
		t.Fatalf("binary name leaked: %q", p1)
	}
}

func TestAnonymizeJobPreservesCategorizationInputs(t *testing.T) {
	j := sampleJob()
	origRead := j.TotalBytesRead()
	origMeta := j.TotalMetaOps()
	origIntervals := j.WriteIntervals()

	a := NewAnonymizer("s")
	a.Job(j)

	if j.User == "alice" || strings.Contains(j.Exe, "lammps") {
		t.Fatal("identity not anonymized")
	}
	if j.Metadata != nil {
		t.Fatal("metadata must be dropped")
	}
	for _, r := range j.Records {
		if strings.Contains(r.Path, "in.dat") || strings.Contains(r.Path, "out.dat") {
			t.Fatalf("path leaked: %q", r.Path)
		}
	}
	if j.TotalBytesRead() != origRead || j.TotalMetaOps() != origMeta {
		t.Fatal("counters changed")
	}
	got := j.WriteIntervals()
	if len(got) != len(origIntervals) || got[0] != origIntervals[0] {
		t.Fatal("intervals changed")
	}
	if err := Validate(j); err != nil {
		t.Fatalf("anonymized job invalid: %v", err)
	}
}

func TestAnonymizeDedupStillWorks(t *testing.T) {
	// Two runs of the same (user, app) must share an AppKey after
	// anonymization; runs of another app must not.
	a := NewAnonymizer("s")
	j1, j2, j3 := sampleJob(), sampleJob(), sampleJob()
	j2.JobID = 2
	j3.Exe = "/apps/bin/other"
	a.Corpus([]*Job{j1, j2, j3})
	if j1.AppKey() != j2.AppKey() {
		t.Fatal("same app diverged under anonymization")
	}
	if j1.AppKey() == j3.AppKey() {
		t.Fatal("distinct apps collided under anonymization")
	}
}
