package mosaic

import (
	"net"

	"github.com/mosaic-hpc/mosaic/internal/dist"
)

// Distributed categorization, re-exported: a master streams traces to
// workers over net/rpc, the role Dispy played for the paper's Python
// implementation.
type (
	// WorkerClient is a connection to one categorization worker.
	WorkerClient = dist.Client
	// Master fans traces out over a set of workers.
	Master = dist.Master
	// Outcome is the per-trace result returned by a Master run.
	Outcome = dist.Outcome
)

// ServeWorker serves categorization requests on the listener until it is
// closed. It blocks; run it in a goroutine (or use the mosaic-worker
// binary on remote hosts).
func ServeWorker(l net.Listener) error { return dist.Serve(l) }

// ListenAndServeWorker serves on a TCP address. It blocks.
func ListenAndServeWorker(addr string) error { return dist.ListenAndServe(addr) }

// DialWorker connects to a worker.
func DialWorker(addr string) (*WorkerClient, error) { return dist.Dial(addr) }

// NewMaster wraps worker connections with a pipeline configuration.
func NewMaster(clients []*WorkerClient, cfg Config) *Master {
	return dist.NewMaster(clients, cfg)
}
