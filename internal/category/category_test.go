package category

import (
	"testing"
	"testing/quick"
)

func TestTemporalLabels(t *testing.T) {
	cases := []struct {
		dir  Direction
		kind TemporalKind
		want Category
	}{
		{DirRead, OnStart, "read_on_start"},
		{DirWrite, OnEnd, "write_on_end"},
		{DirRead, AfterStartBeforeEnd, "read_after_start_before_end"},
		{DirWrite, Steady, "write_steady"},
		{DirRead, Insignificant, "read_insignificant"},
		{DirWrite, BeforeEnd, "write_before_end"},
		{DirRead, AfterStart, "read_after_start"},
	}
	for _, c := range cases {
		if got := Temporal(c.dir, c.kind); got != c.want {
			t.Errorf("Temporal(%v, %v) = %q, want %q", c.dir, c.kind, got, c.want)
		}
	}
}

func TestPeriodicLabels(t *testing.T) {
	if got := Periodic(DirWrite); got != "write_periodic" {
		t.Fatalf("Periodic = %q", got)
	}
	if got := PeriodicMagnitude(DirWrite, MagMinute); got != "write_periodic_minute" {
		t.Fatalf("PeriodicMagnitude = %q", got)
	}
	if got := PeriodicBusy(DirRead, true); got != "read_periodic_high_busy_time" {
		t.Fatalf("PeriodicBusy = %q", got)
	}
	if got := PeriodicBusy(DirRead, false); got != "read_periodic_low_busy_time" {
		t.Fatalf("PeriodicBusy = %q", got)
	}
}

func TestMagnitudeOf(t *testing.T) {
	cases := []struct {
		period float64
		want   PeriodMagnitude
	}{
		{-1, MagNone}, {0, MagNone},
		{0.5, MagSecond}, {59.9, MagSecond},
		{60, MagMinute}, {3599, MagMinute},
		{3600, MagHour}, {86399, MagHour},
		{86400, MagDayOrMore}, {1e7, MagDayOrMore},
	}
	for _, c := range cases {
		if got := MagnitudeOf(c.period); got != c.want {
			t.Errorf("MagnitudeOf(%g) = %v, want %v", c.period, got, c.want)
		}
	}
}

func TestAxisAndDirection(t *testing.T) {
	cases := []struct {
		c    Category
		axis Axis
		dir  Direction
	}{
		{"read_on_start", AxisTemporality, DirRead},
		{"write_steady", AxisTemporality, DirWrite},
		{"write_periodic", AxisPeriodicity, DirWrite},
		{"read_periodic_minute", AxisPeriodicity, DirRead},
		{"write_periodic_low_busy_time", AxisPeriodicity, DirWrite},
		{"metadata_high_spike", AxisMetadata, DirNone},
		{"metadata_insignificant_load", AxisMetadata, DirNone},
	}
	for _, c := range cases {
		if got := c.c.Axis(); got != c.axis {
			t.Errorf("%q.Axis() = %v, want %v", c.c, got, c.axis)
		}
		if got := c.c.Direction(); got != c.dir {
			t.Errorf("%q.Direction() = %v, want %v", c.c, got, c.dir)
		}
	}
}

func TestAllIsClosedAndDistinct(t *testing.T) {
	all := All()
	// 2 directions x (7 temporal + 1 periodic + 4 magnitudes + 2 busy) + 4 metadata
	want := 2*(7+1+4+2) + 4
	if len(all) != want {
		t.Fatalf("All() has %d categories, want %d", len(all), want)
	}
	seen := map[Category]bool{}
	for _, c := range all {
		if seen[c] {
			t.Fatalf("duplicate category %q", c)
		}
		seen[c] = true
	}
}

func TestSetBasics(t *testing.T) {
	s := NewSet("read_on_start", "metadata_high_spike")
	if !s.Has("read_on_start") || s.Has("write_on_end") {
		t.Fatal("Has broken")
	}
	s.Add("write_on_end")
	if !s.HasAll("read_on_start", "write_on_end") {
		t.Fatal("HasAll broken")
	}
	if s.HasAll("read_on_start", "nope") {
		t.Fatal("HasAll false positive")
	}
	sorted := s.Sorted()
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1] >= sorted[i] {
			t.Fatal("Sorted not sorted")
		}
	}
}

func TestSetEqualClone(t *testing.T) {
	a := NewSet("x", "y")
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone should equal original")
	}
	b.Add("z")
	if a.Equal(b) || a.Has("z") {
		t.Fatal("clone not independent")
	}
	if NewSet("x").Equal(NewSet("y")) {
		t.Fatal("different sets equal")
	}
}

func TestSetStringParseRoundTrip(t *testing.T) {
	f := func(mask uint16) bool {
		all := All()
		s := NewSet()
		for i, c := range all {
			if mask&(1<<(i%16)) != 0 && i < 16 {
				s.Add(c)
			}
		}
		return ParseSet(s.String()).Equal(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if got := ParseSet(" a, b ,, c "); len(got) != 3 {
		t.Fatalf("ParseSet whitespace handling: %v", got)
	}
	if got := ParseSet(""); len(got) != 0 {
		t.Fatalf("ParseSet empty: %v", got)
	}
}

func TestStringers(t *testing.T) {
	if AxisTemporality.String() != "temporality" || AxisPeriodicity.String() != "periodicity" || AxisMetadata.String() != "metadata" {
		t.Fatal("axis strings")
	}
	if DirRead.String() != "read" || DirWrite.String() != "write" || DirNone.String() != "" {
		t.Fatal("direction strings")
	}
	kinds := TemporalKinds()
	if len(kinds) != 7 {
		t.Fatalf("TemporalKinds = %d", len(kinds))
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		if seen[k.String()] {
			t.Fatal("duplicate temporal kind string")
		}
		seen[k.String()] = true
	}
	mags := []PeriodMagnitude{MagNone, MagSecond, MagMinute, MagHour, MagDayOrMore}
	for _, m := range mags {
		if m.String() == "" {
			t.Fatal("empty magnitude string")
		}
	}
}
