package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net"
	"time"

	"github.com/mosaic-hpc/mosaic/internal/category"
	"github.com/mosaic-hpc/mosaic/internal/core"
	"github.com/mosaic-hpc/mosaic/internal/darshan"
	"github.com/mosaic-hpc/mosaic/internal/ring"
	"github.com/mosaic-hpc/mosaic/internal/telemetry"
)

// Frame transport: the categorize RPC absorbed onto the cluster's
// length-prefixed binary frame codec (internal/ring), so a deployment
// runs ONE wire protocol — ingest forwarding, replication,
// scatter-gather and remote categorization all speak the same frames,
// with the same request-ID and traceparent propagation on every hop.
// The net/rpc path remains for compatibility; Master works with a mix
// of both client kinds. OpCategorize's body is two length-prefixed
// blobs: the binary-encoded trace, then the JSON-encoded core.Config.

// NewFrameServer returns a frame-RPC worker server with the categorize
// op registered. log and reg mirror Server's observability (either may
// be nil); flightless — pass-through tracing still works because the
// ring server adopts the propagated traceparent only when recording.
func NewFrameServer(log *slog.Logger, reg *telemetry.Registry) *ring.Server {
	svc := &Service{}
	if reg != nil {
		svc.rpcSeconds = reg.Histogram("mosaic_dist_worker_rpc_seconds", "Latency of one worker-side Categorize RPC.", nil, nil)
		svc.rpcTotal = reg.Counter("mosaic_dist_worker_rpc_total", "Categorize RPCs served by this worker.", nil)
		svc.rpcInvalid = reg.Counter("mosaic_dist_worker_rpc_invalid_total", "Categorize RPCs that carried an invalid trace.", nil)
	}
	srv := ring.NewServer(ring.ServerOptions{Log: log})
	srv.Handle(ring.OpCategorize, "categorize", func(ctx context.Context, f *ring.Frame) ([]byte, error) {
		blobs, err := ring.SplitBlobs(f.Body)
		if err != nil {
			return nil, err
		}
		if len(blobs) != 2 {
			return nil, fmt.Errorf("dist: categorize frame carries %d blobs, want trace + config", len(blobs))
		}
		var cfg core.Config
		if err := json.Unmarshal(blobs[1], &cfg); err != nil {
			return nil, fmt.Errorf("dist: decoding config: %w", err)
		}
		args := CategorizeArgs{Trace: blobs[0], Config: cfg}
		var reply CategorizeReply
		if err := svc.Categorize(&args, &reply); err != nil {
			return nil, err
		}
		return json.Marshal(reply)
	})
	return srv
}

// ServeFrame serves frame-transport workers on l until it closes. It
// blocks; a clean shutdown returns nil.
func ServeFrame(l net.Listener) error {
	return NewFrameServer(nil, nil).Serve(l)
}

// ListenAndServeFrame serves frame-transport workers on addr. It blocks.
func ListenAndServeFrame(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return ServeFrame(l)
}

// DialFrame returns a client speaking the frame transport to a worker
// at addr. The connection is opened lazily; timeout bounds dial and
// each call (<= 0: 10s). Frame clients plug into Master exactly like
// net/rpc ones.
func DialFrame(addr string, timeout time.Duration) *Client {
	return &Client{fc: ring.NewClient(addr, timeout), addr: addr}
}

// categorizeFrame is CategorizeContext over the frame transport.
func (c *Client) categorizeFrame(ctx context.Context, j *darshan.Job, cfg core.Config) (*core.Result, string, error) {
	data, err := darshan.MarshalBinary(j)
	if err != nil {
		return nil, "", err
	}
	cfgJSON, err := json.Marshal(cfg)
	if err != nil {
		return nil, "", err
	}
	body := ring.AppendBlob(nil, data)
	body = ring.AppendBlob(body, cfgJSON)
	resp, err := c.fc.Call(ctx, ring.OpCategorize, "categorize", requestIDFromContext(ctx), body)
	if err != nil {
		return nil, "", fmt.Errorf("dist: RPC: %w", err)
	}
	var reply CategorizeReply
	if err := json.Unmarshal(resp, &reply); err != nil {
		return nil, "", fmt.Errorf("dist: decoding reply: %w", err)
	}
	if !reply.Valid {
		return nil, reply.Reason, nil
	}
	var res core.Result
	if err := json.Unmarshal(reply.Result, &res); err != nil {
		return nil, "", fmt.Errorf("dist: decoding result: %w", err)
	}
	res.Categories = category.NewSet()
	for _, l := range res.Labels {
		res.Categories.Add(category.Category(l))
	}
	return &res, "", nil
}

// requestIDContextKey carries a request ID into frame-transport
// categorize calls, so worker-side logs correlate with the originating
// ingest. The serve tier's context plumbing sets it indirectly via
// WithRequestID.
type requestIDContextKey struct{}

// WithRequestID returns a context whose frame-transport RPCs carry the
// given request ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDContextKey{}, id)
}

func requestIDFromContext(ctx context.Context) string {
	id, _ := ctx.Value(requestIDContextKey{}).(string)
	return id
}
