// Scheduler hints: analyze a synthetic corpus and derive I/O-aware job
// scheduling hints from the categorization — the application the paper's
// conclusion motivates ("two jobs categorized as reading large volumes of
// data at the start of execution could be scheduled so as not to
// overlap").
//
//	go run ./examples/scheduler-hints
package main

import (
	"fmt"
	"log"
	"sort"

	"github.com/mosaic-hpc/mosaic"
)

func main() {
	// A small in-memory corpus: plan it, keep the valid traces.
	profile := mosaic.DefaultCorpusProfile()
	profile.Apps = 150
	profile.Seed = 7
	corpus := mosaic.PlanCorpus(profile)

	var jobs []*mosaic.Job
	corpus.Each(func(r mosaic.CorpusRun) bool {
		jobs = append(jobs, r.Job)
		return len(jobs) < 3000
	})

	analysis, err := mosaic.AnalyzeJobs(jobs, mosaic.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("analyzed %d traces -> %d applications\n\n",
		analysis.Funnel.Total, analysis.Funnel.UniqueApps)

	// Hint 1: start-time I/O conflicts. Applications that read large
	// volumes on start should not be launched simultaneously.
	var startReaders []string
	for _, app := range analysis.Apps {
		if app.Result.Categories.Has(mosaic.Temporal(mosaic.DirRead, mosaic.OnStart)) &&
			app.Result.Read.TotalBytes > 1<<30 {
			startReaders = append(startReaders, fmt.Sprintf("%s/%s (%d runs, %.1f GiB)",
				app.Result.User, app.Result.App, app.Runs,
				float64(app.Result.Read.TotalBytes)/(1<<30)))
		}
	}
	sort.Strings(startReaders)
	fmt.Printf("Hint 1 — stagger launches of %d heavy start-readers:\n", len(startReaders))
	for i, s := range startReaders {
		if i == 5 {
			fmt.Printf("  ... and %d more\n", len(startReaders)-5)
			break
		}
		fmt.Println("  ", s)
	}

	// Hint 2: periodic writers can be phase-shifted. List detected
	// cadences so the scheduler can interleave checkpoint windows.
	fmt.Println("\nHint 2 — interleave checkpoint windows of periodic writers:")
	count := 0
	for _, app := range analysis.Apps {
		if !app.Result.Write.Periodic() {
			continue
		}
		count++
		if count <= 5 {
			fmt.Printf("   %s/%s: period %.0fs, busy %.0f%% of each period\n",
				app.Result.User, app.Result.App,
				app.Result.Write.DominantPeriod(),
				app.Result.Write.Groups[0].BusyRatio*100)
		}
	}
	if count > 5 {
		fmt.Printf("   ... and %d more periodic writers\n", count-5)
	}

	// Hint 3: metadata offenders. Jobs with sustained metadata density
	// should not share a metadata server with spike-heavy jobs.
	dense := 0
	for _, app := range analysis.Apps {
		if app.Result.Categories.Has(mosaic.MetaHighDensity) {
			dense++
		}
	}
	fmt.Printf("\nHint 3 — %d applications keep the metadata server under sustained load\n", dense)
	fmt.Println("   (>= 50 req/s on average): isolate them from high-spike jobs.")

	// Global correlations back the policies, as in Section IV-D.
	corr := analysis.Aggregate.Correlations()
	fmt.Printf("\nCorpus correlations backing these policies:\n")
	fmt.Printf("   P(write on end | read on start) = %.0f%%  -> read-compute-write dominates\n",
		corr.ReadStartWritesEnd*100)
	fmt.Printf("   P(low busy | periodic write)    = %.0f%%  -> checkpoint windows are short\n",
		corr.PeriodicWriteLowBusy*100)
}
