// Package index maintains an inverted category index over stored
// categorization results: category → set of trace IDs, plus per-axis
// label counts. It answers boolean queries such as
//
//	periodic_minute AND write_on_end NOT insignificant_load
//
// where each bare term expands to the union of all canonical
// categories containing it (so "periodic_minute" matches both
// read_periodic_minute and write_periodic_minute). The index is
// rebuilt from the result store on startup and updated incrementally
// on ingest; all operations are safe for concurrent use.
//
// Internally this is a compact posting-list engine: trace IDs live in
// a dense lexicographically-ordered dictionary, each category's
// matches are a sorted []uint32 ordinal list, and boolean algebra
// runs over those lists (galloping intersection, linear union, lazy
// NOT against the implicit [0,n) universe) in pooled scratch buffers.
// Readers and writers never block each other: every mutation
// publishes a new immutable snapshot (generation + append-only delta
// log) through one atomic pointer, and a background pass compacts the
// delta into the next generation when it grows past a threshold. The
// map-based predecessor survives as Oracle, the differential-testing
// reference.
package index

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/mosaic-hpc/mosaic/internal/category"
	"github.com/mosaic-hpc/mosaic/internal/reqtrace"
	"github.com/mosaic-hpc/mosaic/internal/store"
)

// Index is a concurrent inverted index from category to trace IDs.
// Queries are wait-free with respect to writers: they load one
// snapshot pointer and run entirely against immutable data.
type Index struct {
	snap atomic.Pointer[snapshot]

	mu   sync.Mutex // serializes writers (Add/Remove/Rebuild/Load) and compaction hand-off
	ops  []deltaOp  // append-only since the last compaction; entries are write-once
	wmap map[store.TraceID]int
	live int
	cats []category.Category

	// compactMin overrides the delta-compaction threshold when > 0
	// (tests use tiny values to force fold churn).
	compactMin int
	compacting atomic.Bool
	compactWG  sync.WaitGroup

	statsCache atomic.Pointer[axisCache]
}

// New returns an empty index.
func New() *Index {
	ix := &Index{wmap: make(map[store.TraceID]int), cats: catNames()}
	ix.snap.Store(&snapshot{gen: emptyGen, cats: ix.cats})
	return ix
}

// Add (re-)indexes one trace under its category set. Re-adding a
// trace replaces its previous postings, so re-categorization under a
// new configuration keeps the index consistent.
func (ix *Index) Add(id store.TraceID, cats category.Set) {
	sorted := cats.Sorted()
	cids := make([]uint16, len(sorted))
	for i, c := range sorted {
		cids[i] = catIDOf(c)
	}
	if cids == nil {
		cids = []uint16{} // non-nil: a live trace with no categories
	}
	ix.mu.Lock()
	ix.applyLocked(id, cids)
	ix.mu.Unlock()
}

// AddCtx is Add wrapped in a request-trace span ("index.update") when
// ctx carries one; untraced contexts pay nothing beyond the nil check.
func (ix *Index) AddCtx(ctx context.Context, id store.TraceID, cats category.Set) {
	if _, _, traced := reqtrace.FromContext(ctx); !traced {
		ix.Add(id, cats)
		return
	}
	start := time.Now()
	ix.Add(id, cats)
	reqtrace.AddSpan(ctx, "index.update", start, time.Since(start),
		reqtrace.Int("categories", int64(len(cats))))
}

// Remove drops a trace from every posting list.
func (ix *Index) Remove(id store.TraceID) {
	ix.mu.Lock()
	ix.applyLocked(id, nil)
	ix.mu.Unlock()
}

// applyLocked appends one delta op (cids == nil tombstones) and
// publishes the resulting snapshot. Caller holds ix.mu.
func (ix *Index) applyLocked(id store.TraceID, cids []uint16) {
	gen := ix.snap.Load().gen
	wasLive := false
	if i, ok := ix.wmap[id]; ok {
		wasLive = ix.ops[i].cats != nil
	} else if _, ok := gen.ordinalOf(id); ok {
		wasLive = true
	}
	if cids == nil && !wasLive {
		return // removing an unknown trace: nothing to record
	}
	for _, c := range cids {
		if int(c) >= len(ix.cats) {
			ix.cats = catNames()
			break
		}
	}
	ix.ops = append(ix.ops, deltaOp{id: id, cats: cids})
	ix.wmap[id] = len(ix.ops) - 1
	if cids != nil && !wasLive {
		ix.live++
	} else if cids == nil && wasLive {
		ix.live--
	}
	ix.publishLocked(gen)
	ix.maybeCompactLocked(gen)
}

// publishLocked stores a fresh snapshot. The ops slice is length- and
// capacity-capped: later appends by the writer can never become
// visible through an already-published snapshot.
func (ix *Index) publishLocked(gen *generation) {
	ix.snap.Store(&snapshot{
		gen:  gen,
		ops:  ix.ops[:len(ix.ops):len(ix.ops)],
		live: ix.live,
		cats: ix.cats,
	})
}

// compactThreshold is the delta length that triggers a background
// fold into the next generation.
func (ix *Index) compactThreshold(gen *generation) int {
	if ix.compactMin > 0 {
		return ix.compactMin
	}
	if t := gen.n() / 64; t > 1024 {
		return t
	}
	return 1024
}

func (ix *Index) maybeCompactLocked(gen *generation) {
	if len(ix.ops) >= ix.compactThreshold(gen) && ix.compacting.CompareAndSwap(false, true) {
		ix.compactWG.Add(1)
		go ix.compactLoop()
	}
}

func (ix *Index) compactLoop() {
	defer ix.compactWG.Done()
	for {
		ix.compactOnce()
		ix.compacting.Store(false)
		// A writer that crossed the threshold while the flag was held
		// skipped spawning; re-check so the delta can't grow unbounded.
		ix.mu.Lock()
		again := len(ix.ops) >= ix.compactThreshold(ix.snap.Load().gen) &&
			ix.compacting.CompareAndSwap(false, true)
		ix.mu.Unlock()
		if !again {
			return
		}
	}
}

// compactOnce folds the published delta prefix into a new generation
// off-lock, then swaps it in and carries over ops that arrived during
// the fold.
func (ix *Index) compactOnce() {
	s := ix.snap.Load()
	if len(s.ops) == 0 {
		return
	}
	gen := mergeGeneration(s, len(s.cats))
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.snap.Load().gen != s.gen {
		return // Rebuild/Load replaced the base mid-fold; discard ours
	}
	tail := ix.ops[len(s.ops):]
	carried := make([]deltaOp, len(tail), len(tail)+64)
	copy(carried, tail)
	ix.ops = carried
	wmap := make(map[store.TraceID]int, len(carried))
	for i, op := range carried {
		wmap[op.id] = i
	}
	ix.wmap = wmap
	ix.publishLocked(gen)
}

// waitCompact blocks until any in-flight compaction finishes (test
// hook).
func (ix *Index) waitCompact() { ix.compactWG.Wait() }

// Categories returns the indexed category set of one trace (nil when
// unknown).
func (ix *Index) Categories(id store.TraceID) []category.Category {
	s := ix.snap.Load()
	cids, ok := s.lookup(id)
	if !ok || len(cids) == 0 {
		return nil
	}
	out := make([]category.Category, len(cids))
	for i, c := range cids {
		out[i] = s.cats[c]
	}
	return out
}

// Len returns the number of indexed traces.
func (ix *Index) Len() int { return ix.snap.Load().live }

// Count returns how many traces carry the exact category.
func (ix *Index) Count(c category.Category) int {
	cid, ok := lookupCatID(c)
	if !ok {
		return 0
	}
	s := ix.snap.Load()
	n := len(s.gen.posting(cid))
	if len(s.ops) == 0 {
		return n
	}
	seen := make(map[store.TraceID]struct{}, len(s.ops))
	for i := len(s.ops) - 1; i >= 0; i-- {
		op := s.ops[i]
		if _, dup := seen[op.id]; dup {
			continue
		}
		seen[op.id] = struct{}{}
		had := false
		if ord, ok := s.gen.ordinalOf(op.id); ok {
			had = containsCat(s.gen.catsAt(ord), cid)
		}
		has := op.cats != nil && containsCat(op.cats, cid)
		if has && !had {
			n++
		} else if had && !has {
			n--
		}
	}
	return n
}

// CategoryCount pairs a category with its posting size.
type CategoryCount struct {
	Category category.Category `json:"category"`
	Count    int               `json:"count"`
}

// axisCache memoizes AxisCounts per snapshot: the pointer identity of
// the snapshot doubles as the invalidation key, so any mutation,
// compaction, or rebuild naturally expires it.
type axisCache struct {
	snap *snapshot
	axes map[string][]CategoryCount
}

// AxisCounts returns the per-axis distribution of indexed categories,
// each axis sorted by decreasing count then name. This is the /v1/stats
// view of the corpus: Table I aggregated live. Computed once per
// snapshot and served from cache until the next mutation.
func (ix *Index) AxisCounts() map[string][]CategoryCount {
	s := ix.snap.Load()
	if c := ix.statsCache.Load(); c != nil && c.snap == s {
		return copyAxes(c.axes)
	}
	axes := computeAxes(s)
	ix.statsCache.Store(&axisCache{snap: s, axes: axes})
	return copyAxes(axes)
}

// copyAxes shallow-copies the outer map so callers cannot perturb the
// cache; the CategoryCount slices are shared and must be treated as
// read-only, which every call site (JSON serialization) honors.
func copyAxes(axes map[string][]CategoryCount) map[string][]CategoryCount {
	out := make(map[string][]CategoryCount, len(axes))
	for k, v := range axes {
		out[k] = v
	}
	return out
}

func computeAxes(s *snapshot) map[string][]CategoryCount {
	counts := make([]int, len(s.cats))
	for cid, p := range s.gen.postings {
		counts[cid] = len(p)
	}
	if len(s.ops) > 0 {
		seen := make(map[store.TraceID]struct{}, len(s.ops))
		for i := len(s.ops) - 1; i >= 0; i-- {
			op := s.ops[i]
			if _, dup := seen[op.id]; dup {
				continue
			}
			seen[op.id] = struct{}{}
			if ord, ok := s.gen.ordinalOf(op.id); ok {
				for _, c := range s.gen.catsAt(ord) {
					counts[c]--
				}
			}
			for _, c := range op.cats {
				counts[c]++
			}
		}
	}
	out := map[string][]CategoryCount{
		category.AxisTemporality.String(): {},
		category.AxisPeriodicity.String(): {},
		category.AxisMetadata.String():    {},
	}
	for cid, cnt := range counts {
		if cnt <= 0 {
			continue
		}
		c := s.cats[cid]
		axis := c.Axis().String()
		out[axis] = append(out[axis], CategoryCount{Category: c, Count: cnt})
	}
	for _, counts := range out {
		sort.Slice(counts, func(i, j int) bool {
			if counts[i].Count != counts[j].Count {
				return counts[i].Count > counts[j].Count
			}
			return counts[i].Category < counts[j].Category
		})
	}
	return out
}

// Rebuild repopulates the index from every stored result under the
// given config fingerprint, replacing current contents atomically
// (queries running during a rebuild see the old state until the swap).
// It streams only the category labels out of the log — one sequential
// readahead pass, no full result decode. It returns the number of
// traces indexed.
func (ix *Index) Rebuild(s *store.Store, fingerprint string) (int, error) {
	var entries []entry
	err := s.EachResultLabels(fingerprint, func(id store.TraceID, labels []string) bool {
		cids := make([]uint16, len(labels))
		for i, l := range labels {
			cids[i] = catIDOf(category.Category(l))
		}
		entries = append(entries, entry{id: id, cats: cids})
		return true
	})
	if err != nil {
		return 0, err
	}
	return ix.install(entries), nil
}

// Entry is one trace for bulk loading.
type Entry struct {
	ID   store.TraceID
	Cats category.Set
}

// Load bulk-replaces the index contents in one generation build —
// the path for restoring from a snapshot or building large synthetic
// corpora without paying one epoch publication per trace. Later
// entries win on duplicate IDs. It returns the number of traces
// indexed.
func (ix *Index) Load(items []Entry) int {
	entries := make([]entry, len(items))
	for i, it := range items {
		sorted := it.Cats.Sorted()
		cids := make([]uint16, len(sorted))
		for j, c := range sorted {
			cids[j] = catIDOf(c)
		}
		entries[i] = entry{id: it.ID, cats: cids}
	}
	return ix.install(entries)
}

// install sorts, dedups (latest wins), builds a generation, and
// publishes it wholesale with an empty delta.
func (ix *Index) install(entries []entry) int {
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].id < entries[j].id })
	names := catNames()
	dedup := entries[:0]
	for _, e := range entries {
		sortCatIDs(e.cats, names)
		if n := len(dedup); n > 0 && dedup[n-1].id == e.id {
			dedup[n-1] = e // later entry for the same ID wins
			continue
		}
		dedup = append(dedup, e)
	}
	ix.mu.Lock()
	ix.cats = catNames()
	gen := buildGeneration(dedup, len(ix.cats))
	ix.ops = nil
	ix.wmap = make(map[store.TraceID]int)
	ix.live = gen.n()
	ix.publishLocked(gen)
	ix.mu.Unlock()
	return gen.n()
}
