// Quickstart: build a small trace by hand, categorize it, and print the
// detection walkthrough (the Figure 2 view of the paper).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/mosaic-hpc/mosaic"
)

func main() {
	// A 2-hour, 64-rank job: it reads 4 GiB of input right after start,
	// writes a 1 GiB checkpoint every 10 minutes, and dumps an 8 GiB
	// result at the end.
	job := &mosaic.Job{
		JobID:   42,
		User:    "alice",
		Exe:     "/apps/bin/simulation",
		NProcs:  64,
		Start:   1_700_000_000,
		End:     1_700_007_200,
		Runtime: 7200,
	}

	// Input read: all ranks read a shared dataset during the first 90s.
	job.Records = append(job.Records, mosaic.FileRecord{
		Module: mosaic.ModPOSIX,
		Path:   "/scratch/alice/input.dat",
		Rank:   -1, // shared across ranks
		C: mosaic.Counters{
			Opens: 64, Closes: 64, Seeks: 64,
			Reads: 4096, BytesRead: 4 << 30,
			OpenStart: 5, OpenEnd: 6,
			ReadStart: 6, ReadEnd: 95,
			CloseStart: 95, CloseEnd: 96,
		},
	})

	// Checkpoints: one shared file per checkpoint, every 600 s, 30 s long.
	for t := 600.0; t+30 < 7200; t += 600 {
		job.Records = append(job.Records, mosaic.FileRecord{
			Module: mosaic.ModPOSIX,
			Path:   fmt.Sprintf("/scratch/alice/ckpt.%04.0f", t),
			Rank:   -1,
			C: mosaic.Counters{
				Opens: 64, Closes: 64, Seeks: 64,
				Writes: 1024, BytesWritten: 1 << 30,
				OpenStart: t - 1, OpenEnd: t,
				WriteStart: t, WriteEnd: t + 30,
				CloseStart: t + 30, CloseEnd: t + 31,
			},
		})
	}

	// Final result dump in the last minutes.
	job.Records = append(job.Records, mosaic.FileRecord{
		Module: mosaic.ModPOSIX,
		Path:   "/scratch/alice/result.h5",
		Rank:   -1,
		C: mosaic.Counters{
			Opens: 64, Closes: 64, Seeks: 64,
			Writes: 8192, BytesWritten: 8 << 30,
			OpenStart: 7050, OpenEnd: 7051,
			WriteStart: 7051, WriteEnd: 7140,
			CloseStart: 7140, CloseEnd: 7141,
		},
	})

	if err := mosaic.Validate(job); err != nil {
		log.Fatalf("trace is corrupted: %v", err)
	}
	res, err := mosaic.Categorize(job, mosaic.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Assigned categories:")
	for _, label := range res.Labels {
		fmt.Println("  -", label)
	}
	fmt.Println("\nDetection walkthrough:")
	mosaic.Explain(os.Stdout, res)
}
