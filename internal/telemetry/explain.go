package telemetry

// ExplainMetrics groups the decision-provenance instruments: how many
// explanations were collected, how much evidence they carry, and how
// often rules were within the near-miss margin of flipping. A corpus
// whose near-miss ratio trends up is category-flip-prone — small
// threshold or workload changes will relabel it — and that shows up on
// /metrics before it surprises anyone.
type ExplainMetrics struct {
	// Explanations counts collected explanations
	// (mosaic_explain_explanations_total).
	Explanations *Counter
	// Evidence counts evidence entries across all explanations
	// (mosaic_explain_evidence_total).
	Evidence *Counter
	// NearMisses counts near-miss evidence entries
	// (mosaic_explain_near_misses_total).
	NearMisses *Counter
	// EvidenceEntries is the per-explanation evidence-count distribution
	// (mosaic_explain_evidence_entries).
	EvidenceEntries *Histogram
	// NearMissRatio is the per-explanation near-miss fraction
	// (mosaic_explain_near_miss_ratio).
	NearMissRatio *Histogram
	// Bytes is the serialized explanation size distribution
	// (mosaic_explain_bytes).
	Bytes *Histogram
}

// NewExplainMetrics registers the explain instruments in reg.
func NewExplainMetrics(reg *Registry) *ExplainMetrics {
	return &ExplainMetrics{
		Explanations: reg.Counter("mosaic_explain_explanations_total",
			"Decision-provenance explanations collected.", nil),
		Evidence: reg.Counter("mosaic_explain_evidence_total",
			"Evidence entries across all explanations.", nil),
		NearMisses: reg.Counter("mosaic_explain_near_misses_total",
			"Evidence entries within the near-miss margin of flipping.", nil),
		EvidenceEntries: reg.Histogram("mosaic_explain_evidence_entries",
			"Evidence entries per explanation.",
			[]float64{8, 16, 24, 32, 48, 64, 96, 128, 192, 256}, nil),
		NearMissRatio: reg.Histogram("mosaic_explain_near_miss_ratio",
			"Fraction of an explanation's evidence that was a near-miss.",
			[]float64{0, 0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 0.75, 1}, nil),
		Bytes: reg.Histogram("mosaic_explain_bytes",
			"Serialized explanation size in bytes.",
			[]float64{512, 1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072}, nil),
	}
}

// Observe records one explanation's evidence count, near-miss count and
// serialized size.
func (m *ExplainMetrics) Observe(evidence, nearMisses, bytes int) {
	if m == nil {
		return
	}
	m.Explanations.Inc()
	m.Evidence.Add(int64(evidence))
	m.NearMisses.Add(int64(nearMisses))
	m.EvidenceEntries.Observe(float64(evidence))
	if evidence > 0 {
		m.NearMissRatio.Observe(float64(nearMisses) / float64(evidence))
	}
	if bytes > 0 {
		m.Bytes.Observe(float64(bytes))
	}
}
