package main

import (
	"io"
	"log/slog"

	"testing"

	"github.com/mosaic-hpc/mosaic"
)

func TestSimSyntheticMode(t *testing.T) {
	if err := run("", true, 32, 20, 10, 1, 64, testLogger()); err != nil {
		t.Fatal(err)
	}
}

func TestSimCorpusMode(t *testing.T) {
	dir := t.TempDir()
	profile := mosaic.DefaultCorpusProfile()
	profile.Apps = 10
	profile.Seed = 3
	corpus := mosaic.PlanCorpus(profile)
	n := 0
	corpus.Each(func(r mosaic.CorpusRun) bool {
		name := dir + "/t" + string(rune('a'+n%26)) + ".mosd"
		if n >= 26 {
			return false
		}
		if err := mosaic.WriteTrace(name, r.Job); err != nil {
			t.Fatal(err)
		}
		n++
		return true
	})
	if err := run(dir, false, 16, 20, 10, 1, 16, testLogger()); err != nil {
		t.Fatal(err)
	}
}

func TestSimRequiresInput(t *testing.T) {
	if err := run("", false, 16, 20, 10, 1, 16, testLogger()); err == nil {
		t.Fatal("no input mode accepted")
	}
}

// testLogger returns a discard-backed slog logger for run() calls.
func testLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}
