package core

import (
	"sort"

	"github.com/mosaic-hpc/mosaic/internal/category"
	"github.com/mosaic-hpc/mosaic/internal/interval"
	"github.com/mosaic-hpc/mosaic/internal/stats"
)

// Temporality characterization (Section III-B3b): the trace is split into
// ChunkCount equal temporal chunks; the per-chunk byte volumes decide when
// the application performs its I/O.

// Chunks distributes the volume of each operation over the temporal chunks
// it overlaps, proportionally to the overlap duration. Instantaneous
// operations (zero duration) contribute entirely to the chunk containing
// their start.
func Chunks(ops []interval.Interval, runtime float64, n int) []float64 {
	out := make([]float64, n)
	if runtime <= 0 || n <= 0 {
		return out
	}
	w := runtime / float64(n)
	for _, op := range ops {
		if op.Duration() <= 0 {
			i := chunkIndex(op.Start, w, n)
			out[i] += float64(op.Bytes)
			continue
		}
		rate := float64(op.Bytes) / op.Duration()
		lo := chunkIndex(op.Start, w, n)
		hi := chunkIndex(op.End, w, n)
		for c := lo; c <= hi; c++ {
			cs, ce := float64(c)*w, float64(c+1)*w
			overlap := minF(op.End, ce) - maxF(op.Start, cs)
			if overlap > 0 {
				out[c] += rate * overlap
			}
		}
	}
	return out
}

func chunkIndex(t, w float64, n int) int {
	i := int(t / w)
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// classifyTemporality maps per-chunk volumes to a temporality kind:
//
//  1. below the significance threshold → Insignificant;
//  2. coefficient of variation below SteadyCV → Steady;
//  3. a minimal set of chunks each holding more than DominanceFactor× the
//     volume of every remaining chunk → the category named by the set
//     (first chunk → OnStart, last → OnEnd, interior → AfterStart /
//     BeforeEnd / AfterStartBeforeEnd);
//  4. otherwise the single largest chunk decides (weak dominance). This
//     fallback is the documented source of most of the paper's
//     misclassifications: "a sub-optimal detection of temporality in some
//     cases where an operation is unequally spread across multiple
//     chunks".
func classifyTemporality(chunks []float64, total int64, cfg *Config) category.TemporalKind {
	return classifyTemporalityTraced(chunks, total, cfg, nil)
}

// domCheck is one evaluated dominance comparison: does the top-K chunk
// set dominate the rest by the configured factor?
type domCheck struct {
	K       int     // size of the candidate dominant set
	MinDom  float64 // smallest volume inside the candidate set
	MaxRest float64 // largest volume outside it
	Pass    bool
}

// temporalTrace captures the intermediate quantities of the temporality
// decision for the explain subsystem. A nil trace costs nothing beyond a
// pointer check per comparison.
type temporalTrace struct {
	CV     float64
	Checks []domCheck
	Weak   bool // weak-dominance fallback (argmax chunk) decided
}

// classifyTemporalityTraced is classifyTemporality with optional
// provenance collection; the two always return the same kind.
func classifyTemporalityTraced(chunks []float64, total int64, cfg *Config, tr *temporalTrace) category.TemporalKind {
	if total < cfg.SignificanceBytes {
		return category.Insignificant
	}
	cv := stats.CoefficientOfVariation(chunks)
	if tr != nil {
		tr.CV = cv
	}
	if cv < cfg.SteadyCV {
		return category.Steady
	}
	if dom := dominantChunksTraced(chunks, cfg.DominanceFactor, tr); dom != nil {
		return kindForChunkSetWeighted(dom, chunks)
	}
	// Weak dominance: argmax chunk.
	if tr != nil {
		tr.Weak = true
	}
	best := 0
	for i, v := range chunks {
		if v > chunks[best] {
			best = i
		}
	}
	return kindForChunkSet([]int{best}, len(chunks))
}

// dominantChunks returns the smallest set of chunk indices such that every
// member holds more than factor× the volume of every non-member, or nil
// when no set smaller than the whole dominates.
func dominantChunks(chunks []float64, factor float64) []int {
	return dominantChunksTraced(chunks, factor, nil)
}

func dominantChunksTraced(chunks []float64, factor float64, tr *temporalTrace) []int {
	n := len(chunks)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return chunks[idx[a]] > chunks[idx[b]] })
	for k := 1; k < n; k++ {
		minDom := chunks[idx[k-1]]
		maxRest := chunks[idx[k]]
		pass := minDom > factor*maxRest
		if tr != nil {
			tr.Checks = append(tr.Checks, domCheck{K: k, MinDom: minDom, MaxRest: maxRest, Pass: pass})
		}
		if pass {
			dom := append([]int(nil), idx[:k]...)
			sort.Ints(dom)
			return dom
		}
	}
	return nil
}

// kindForChunkSet names a dominant chunk-index set. The mapping follows
// the paper's label semantics with ChunkCount chunks: the first chunk is
// the beginning of the execution, the last one the end.
func kindForChunkSet(dom []int, n int) category.TemporalKind {
	first, last := false, false
	interiorLo, interiorHi := false, false // first half interior / second half interior
	for _, c := range dom {
		switch {
		case c == 0:
			first = true
		case c == n-1:
			last = true
		case c < n/2:
			interiorLo = true
		default:
			interiorHi = true
		}
	}
	switch {
	case first && !last && !interiorLo && !interiorHi:
		return category.OnStart
	case last && !first && !interiorLo && !interiorHi:
		return category.OnEnd
	case first && last:
		// Activity concentrated at both extremes; name the heavier end
		// is ambiguous with equal weight, so favor the start (reads) —
		// callers with chunk values use kindForChunkSetWeighted instead.
		return category.OnStart
	case interiorLo && interiorHi:
		return category.AfterStartBeforeEnd
	case interiorLo:
		if first {
			return category.OnStart
		}
		return category.AfterStart
	case interiorHi:
		if last {
			return category.OnEnd
		}
		return category.BeforeEnd
	default:
		return category.AfterStartBeforeEnd
	}
}

// kindForChunkSetWeighted resolves the first-and-last ambiguity using the
// actual chunk volumes.
func kindForChunkSetWeighted(dom []int, chunks []float64) category.TemporalKind {
	n := len(chunks)
	hasFirst, hasLast := false, false
	for _, c := range dom {
		if c == 0 {
			hasFirst = true
		}
		if c == n-1 {
			hasLast = true
		}
	}
	if hasFirst && hasLast {
		if chunks[n-1] > chunks[0] {
			return category.OnEnd
		}
		return category.OnStart
	}
	return kindForChunkSet(dom, n)
}
