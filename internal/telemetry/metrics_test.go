package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterMonotonic(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("t_total", "help", nil)
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Re-registration returns the same instrument.
	if c2 := reg.Counter("t_total", "help", nil); c2 != c {
		t.Fatal("re-registration returned a different counter")
	}
}

func TestGaugeSetAddConcurrent(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("g", "help", nil)
	g.Set(10)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				g.Inc()
				g.Dec()
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 10 {
		t.Fatalf("gauge = %v, want 10 after balanced inc/dec", got)
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	h := newHistogram([]float64{1, 2, 5})
	// Exactly on a bound lands in that bound's bucket (le is inclusive).
	h.Observe(1)
	// Below the first bound.
	h.Observe(0.5)
	// Between bounds.
	h.Observe(1.5)
	// Exactly the last bound.
	h.Observe(5)
	// Above every bound: +Inf bucket.
	h.Observe(99)
	// Negative values land in the first bucket.
	h.Observe(-3)
	// NaN is dropped entirely.
	h.Observe(math.NaN())

	s := h.Snapshot()
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6 (NaN dropped)", s.Count)
	}
	wantCounts := []int64{3, 1, 1, 1} // le=1: {1, 0.5, -3}; le=2: {1.5}; le=5: {5}; +Inf: {99}
	for i, want := range wantCounts {
		if s.Counts[i] != want {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], want, s.Counts)
		}
	}
	if want := 1 + 0.5 + 1.5 + 5 + 99 - 3; s.Sum != want {
		t.Fatalf("sum = %v, want %v", s.Sum, want)
	}
}

func TestHistogramUnsortedAndDuplicateBounds(t *testing.T) {
	h := newHistogram([]float64{5, 1, 5, 2, math.Inf(1)})
	s := h.Snapshot()
	want := []float64{1, 2, 5}
	if len(s.UpperBounds) != len(want) {
		t.Fatalf("bounds = %v, want %v", s.UpperBounds, want)
	}
	for i := range want {
		if s.UpperBounds[i] != want[i] {
			t.Fatalf("bounds = %v, want %v", s.UpperBounds, want)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for i := 0; i < 100; i++ {
		h.Observe(0.5) // all in the first bucket
	}
	s := h.Snapshot()
	if q := s.Quantile(0.5); q <= 0 || q > 1 {
		t.Fatalf("p50 = %v, want within (0, 1]", q)
	}
	if q := (HistogramSnapshot{}).Quantile(0.99); q != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", q)
	}
}

func TestWritePrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("mosaic_items_total", "Items processed.", Labels{"stage": "decode"}).Add(3)
	reg.Counter("mosaic_items_total", "Items processed.", Labels{"stage": "categorize"}).Add(2)
	reg.Gauge("mosaic_workers", "Live workers.", nil).Set(4)
	h := reg.Histogram("mosaic_latency_seconds", "Latency.", []float64{0.1, 1}, nil)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP mosaic_items_total Items processed.
# TYPE mosaic_items_total counter
mosaic_items_total{stage="categorize"} 2
mosaic_items_total{stage="decode"} 3
# HELP mosaic_workers Live workers.
# TYPE mosaic_workers gauge
mosaic_workers 4
# HELP mosaic_latency_seconds Latency.
# TYPE mosaic_latency_seconds histogram
mosaic_latency_seconds_bucket{le="0.1"} 1
mosaic_latency_seconds_bucket{le="1"} 2
mosaic_latency_seconds_bucket{le="+Inf"} 3
mosaic_latency_seconds_sum 5.55
mosaic_latency_seconds_count 3
`
	if got := b.String(); got != want {
		t.Fatalf("prometheus exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestRegistryConcurrentRegistration(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				reg.Counter("shared_total", "h", nil).Inc()
				reg.Histogram("shared_seconds", "h", nil, nil).Observe(0.01)
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("shared_total", "h", nil).Value(); got != 400 {
		t.Fatalf("shared counter = %d, want 400", got)
	}
}

func TestObserveWithExemplar(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("mosaic_req_seconds", "Req.", []float64{0.1, 1}, nil)
	h.ObserveWithExemplar(0.05, "aaaa")
	h.ObserveWithExemplar(0.5, "bbbb")
	h.ObserveWithExemplar(0.6, "cccc") // replaces bbbb in the same bucket
	h.ObserveWithExemplar(0.7, "")     // empty trace: counted, no exemplar

	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("count = %d, want 4", s.Count)
	}
	if len(s.Exemplars) != len(s.Counts) {
		t.Fatalf("exemplar slots = %d, buckets = %d", len(s.Exemplars), len(s.Counts))
	}
	if s.Exemplars[0] == nil || s.Exemplars[0].TraceID != "aaaa" {
		t.Fatalf("bucket 0 exemplar = %+v", s.Exemplars[0])
	}
	if s.Exemplars[1] == nil || s.Exemplars[1].TraceID != "cccc" {
		t.Fatalf("bucket 1 exemplar should be the latest, got %+v", s.Exemplars[1])
	}
	if s.Exemplars[2] != nil {
		t.Fatalf("+Inf bucket has an exemplar: %+v", s.Exemplars[2])
	}

	// A histogram that never saw an exemplar allocates nothing for them.
	plain := reg.Histogram("mosaic_plain_seconds", "Plain.", []float64{1}, nil)
	plain.Observe(0.5)
	if got := plain.Snapshot().Exemplars; got != nil {
		t.Fatalf("plain histogram carries exemplar slots: %v", got)
	}
}

func TestWriteOpenMetricsGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("mosaic_items_total", "Items processed.", Labels{"stage": "decode"}).Add(3)
	reg.Gauge("mosaic_workers", "Live workers.", nil).Set(4)
	h := reg.Histogram("mosaic_latency_seconds", "Latency.", []float64{0.1, 1}, nil)
	h.ObserveWithExemplar(0.05, "0af7651916cd43dd8448eb211c80319c")
	h.Observe(5)

	var b strings.Builder
	if err := reg.WriteOpenMetrics(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	// Counter families drop the _total suffix in metadata but keep it on
	// the sample line; the exposition must terminate with # EOF.
	for _, want := range []string{
		"# TYPE mosaic_items counter\n",
		"mosaic_items_total{stage=\"decode\"} 3\n",
		"# TYPE mosaic_workers gauge\n",
		"# TYPE mosaic_latency_seconds histogram\n",
		"mosaic_latency_seconds_bucket{le=\"+Inf\"} 2\n",
		"mosaic_latency_seconds_count 2\n",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("OpenMetrics exposition missing %q:\n%s", want, got)
		}
	}
	if !strings.HasSuffix(got, "# EOF\n") {
		t.Fatalf("exposition does not end with # EOF:\n%s", got)
	}
	if !strings.Contains(got,
		`mosaic_latency_seconds_bucket{le="0.1"} 1 # {trace_id="0af7651916cd43dd8448eb211c80319c"} 0.05 `) {
		t.Fatalf("bucket exemplar missing or malformed:\n%s", got)
	}
	// Buckets without an exemplar stay bare.
	if strings.Contains(got, `le="1"} 1 #`) {
		t.Fatalf("empty bucket grew an exemplar:\n%s", got)
	}

	// The classic Prometheus exposition never includes exemplar syntax.
	var p strings.Builder
	if err := reg.WritePrometheus(&p); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(p.String(), "# {") {
		t.Fatalf("Prometheus 0.0.4 exposition leaked exemplars:\n%s", p.String())
	}
}
