package index

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"github.com/mosaic-hpc/mosaic/internal/category"
	"github.com/mosaic-hpc/mosaic/internal/store"
)

// fuzzIndex builds a small index spanning every category, so term
// expansion and NOT-against-the-universe both have material to chew on.
func fuzzIndex() *Index {
	ix := New()
	all := category.All()
	for i, c := range all {
		id := store.TraceID(strings.Repeat("0", 60) + string(rune('a'+i%26)) + "fff")
		ix.Add(id, category.NewSet(c, all[(i+7)%len(all)]))
	}
	return ix
}

// FuzzQueryParse hammers the boolean query parser: queries now arrive
// over the peer RPC as well as the public API, so arbitrary input must
// never panic or overflow the stack, Parse and Query must agree on
// validity, and every accepted query must evaluate to a sorted,
// deduplicated ID list.
func FuzzQueryParse(f *testing.F) {
	seeds := []string{
		"",
		"read_periodic",
		"read_periodic AND write_aperiodic",
		"read_periodic OR write_aperiodic",
		"NOT metadata_insignificant_load",
		"read NOT write",
		"(read OR write) AND NOT metadata",
		"((read))",
		"read write",           // juxtaposition = AND
		"rEaD oR wRiTe",        // case-insensitive keywords
		"read,write",           // comma separator
		"read AND",             // dangling operator
		"AND read",             // leading operator
		"(read",                // unclosed paren
		"read)",                // stray close
		"zzz_no_such_category", // term matching nothing
		"NOT NOT NOT read",     // stacked negation
		strings.Repeat("(", 600) + "read" + strings.Repeat(")", 600), // past the depth cap
		"read\t\nwrite\r",
		"()",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	ix := fuzzIndex()
	f.Fuzz(func(t *testing.T, q string) {
		if len(q) > 1<<16 {
			return // bound tokenizer work, not a parser property
		}
		parseErr := Parse(q)
		ids, queryErr := ix.Query(q)
		if (parseErr == nil) != (queryErr == nil) {
			t.Fatalf("Parse err %v but Query err %v for %q", parseErr, queryErr, q)
		}
		if queryErr != nil {
			return
		}
		for i := 1; i < len(ids); i++ {
			if ids[i-1] >= ids[i] {
				t.Fatalf("Query(%q) output unsorted or duplicated at %d: %q >= %q", q, i, ids[i-1], ids[i])
			}
		}
	})
}

// FuzzQueryEval is the differential fuzz target: a deterministic
// random corpus (seeded by the fuzzer, including removes and re-adds
// so the delta log and compaction both engage) indexed into the
// posting-list engine and the map-based Oracle, which must agree
// exactly on every fuzzed query.
func FuzzQueryEval(f *testing.F) {
	for _, s := range []struct {
		seed uint64
		q    string
	}{
		{1, "write_on_end"},
		{2, "periodic_minute AND write_on_end NOT insignificant_load"},
		{3, "NOT (read_on_start OR write_on_end)"},
		{4, "NOT busy AND NOT spike"},
		{5, "(read OR write) AND NOT metadata"},
		{6, "write_on_end OR NOT write_on_end"},
		{7, "steady spike single"},
		{8, "NOT NOT read_on_start"},
	} {
		f.Add(s.seed, s.q)
	}
	f.Fuzz(func(t *testing.T, seed uint64, q string) {
		if len(q) > 1<<12 {
			return
		}
		rng := rand.New(rand.NewSource(int64(seed)))
		n := 1 + rng.Intn(200)
		ix, or := New(), NewOracle()
		ix.compactMin = 16 // tiny threshold: folds happen mid-corpus
		all := category.All()
		for i := 0; i < n; i++ {
			s := category.NewSet()
			for _, c := range all {
				if rng.Intn(6) == 0 {
					s.Add(c)
				}
			}
			tid := id(i)
			ix.Add(tid, s)
			or.Add(tid, s)
			if rng.Intn(4) == 0 {
				victim := id(rng.Intn(i + 1))
				if rng.Intn(2) == 0 {
					ix.Remove(victim)
					or.Remove(victim)
				} else {
					s2 := category.NewSet(all[rng.Intn(len(all))])
					ix.Add(victim, s2)
					or.Add(victim, s2)
				}
			}
		}
		ix.waitCompact()
		if ix.Len() != or.Len() {
			t.Fatalf("Len: engine=%d oracle=%d", ix.Len(), or.Len())
		}
		got, gerr := ix.Query(q)
		want, werr := or.Query(q)
		if (gerr == nil) != (werr == nil) {
			t.Fatalf("Query(%q): engine err=%v oracle err=%v", q, gerr, werr)
		}
		if gerr != nil {
			return
		}
		if len(got) != len(want) {
			t.Fatalf("Query(%q): engine %d ids, oracle %d ids", q, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("Query(%q): mismatch at %d: engine %q oracle %q", q, i, got[i], want[i])
			}
		}
	})
}

// FuzzMergeSorted checks the scatter-gather reduce step: any partition
// of ID lists — sorted or not — must merge to the sorted, deduplicated
// union.
func FuzzMergeSorted(f *testing.F) {
	f.Add("a,b,c|b,c,d", "")
	f.Add("", "a|a|a")
	f.Add("c,b,a", "x,y")
	f.Fuzz(func(t *testing.T, one, two string) {
		split := func(s string) [][]string {
			var out [][]string
			for _, part := range strings.Split(s, "|") {
				if part == "" {
					out = append(out, nil)
					continue
				}
				out = append(out, strings.Split(part, ","))
			}
			return out
		}
		lists := append(split(one), split(two)...)
		got := MergeSorted(lists...)
		want := map[string]struct{}{}
		for _, l := range lists {
			for _, id := range l {
				want[id] = struct{}{}
			}
		}
		if len(got) != len(want) {
			t.Fatalf("merge of %q|%q lost or duplicated IDs: %d != %d", one, two, len(got), len(want))
		}
		if !sort.StringsAreSorted(got) {
			t.Fatalf("merge of %q|%q is unsorted", one, two)
		}
		for _, id := range got {
			if _, ok := want[id]; !ok {
				t.Fatalf("merge invented ID %q", id)
			}
		}
	})
}
