package dsp

import "math"

// Welch's method and spectrograms: higher-fidelity spectral estimation for
// the frequency-technique baseline. Averaging windowed periodograms
// reduces estimator variance at the cost of frequency resolution — useful
// on long traces where a single periodogram is noisy.

// HannWindow returns the n-point Hann window coefficients.
func HannWindow(n int) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := range w {
		w[i] = 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(n-1)))
	}
	return w
}

// WelchConfig parametrizes Welch.
type WelchConfig struct {
	// SegmentSize is the window length in samples; rounded down to a
	// power of two (default 256).
	SegmentSize int
	// Overlap is the fractional overlap between consecutive segments in
	// [0, 0.95] (default 0.5).
	Overlap float64
}

func (c WelchConfig) withDefaults() WelchConfig {
	if c.SegmentSize <= 0 {
		c.SegmentSize = 256
	}
	// Round down to a power of two for the FFT.
	p := 1
	for p*2 <= c.SegmentSize {
		p *= 2
	}
	c.SegmentSize = p
	if c.Overlap < 0 {
		c.Overlap = 0
	}
	if c.Overlap > 0.95 {
		c.Overlap = 0.95
	}
	if c.Overlap == 0 {
		c.Overlap = 0.5
	}
	return c
}

// Welch estimates the one-sided power spectral density of a real signal
// sampled at sampleRate Hz by averaging Hann-windowed, overlapping
// periodograms. Returns nil spectra for signals shorter than one segment.
func Welch(signal []float64, sampleRate float64, cfg WelchConfig) (power, freq []float64) {
	cfg = cfg.withDefaults()
	seg := cfg.SegmentSize
	if len(signal) < seg {
		// Fall back to the largest power-of-two prefix.
		p := 1
		for p*2 <= len(signal) {
			p *= 2
		}
		if p < 8 {
			return nil, nil
		}
		seg = p
	}
	step := int(float64(seg) * (1 - cfg.Overlap))
	if step < 1 {
		step = 1
	}
	window := HannWindow(seg)
	var windowPower float64
	for _, w := range window {
		windowPower += w * w
	}

	half := seg/2 + 1
	power = make([]float64, half)
	freq = make([]float64, half)
	for k := 0; k < half; k++ {
		freq[k] = float64(k) * sampleRate / float64(seg)
	}

	segments := 0
	buf := make([]complex128, seg)
	for start := 0; start+seg <= len(signal); start += step {
		// De-mean within the window, apply the window, transform.
		var mean float64
		for i := 0; i < seg; i++ {
			mean += signal[start+i]
		}
		mean /= float64(seg)
		for i := 0; i < seg; i++ {
			buf[i] = complex((signal[start+i]-mean)*window[i], 0)
		}
		_ = FFT(buf)
		for k := 0; k < half; k++ {
			re, im := real(buf[k]), imag(buf[k])
			power[k] += (re*re + im*im) / (windowPower * sampleRate)
		}
		segments++
	}
	if segments == 0 {
		return nil, nil
	}
	for k := range power {
		power[k] /= float64(segments)
	}
	return power, freq
}

// Spectrogram computes a short-time power spectrum: one Welch-style
// windowed periodogram per hop. Rows are time steps, columns frequency
// bins; times holds the center of each window in seconds. Useful for
// visualizing when a periodic phase starts and stops within a trace.
func Spectrogram(signal []float64, sampleRate float64, cfg WelchConfig) (spec [][]float64, times, freq []float64) {
	cfg = cfg.withDefaults()
	seg := cfg.SegmentSize
	if len(signal) < seg {
		return nil, nil, nil
	}
	step := int(float64(seg) * (1 - cfg.Overlap))
	if step < 1 {
		step = 1
	}
	window := HannWindow(seg)
	half := seg/2 + 1
	freq = make([]float64, half)
	for k := 0; k < half; k++ {
		freq[k] = float64(k) * sampleRate / float64(seg)
	}
	buf := make([]complex128, seg)
	for start := 0; start+seg <= len(signal); start += step {
		row := make([]float64, half)
		for i := 0; i < seg; i++ {
			buf[i] = complex(signal[start+i]*window[i], 0)
		}
		_ = FFT(buf)
		for k := 0; k < half; k++ {
			re, im := real(buf[k]), imag(buf[k])
			row[k] = re*re + im*im
		}
		spec = append(spec, row)
		times = append(times, (float64(start)+float64(seg)/2)/sampleRate)
	}
	return spec, times, freq
}
