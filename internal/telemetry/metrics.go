// Package telemetry is MOSAIC's zero-dependency observability layer:
// a concurrent-safe metrics registry with Prometheus text exposition,
// a per-trace span recorder exporting Chrome trace-event JSON, a
// slow-trace log, structured logging built on log/slog, and a live
// introspection HTTP server (/metrics, /healthz, /debug/engine, pprof).
//
// Everything is opt-in and composes with the engine through its
// Observer seam: the Telemetry bundle implements engine.Observer (and
// the per-item engine.SpanObserver extension), so a frontend enables
// full telemetry by passing one knob and pays near-zero cost when it
// does not.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Labels is an immutable metric label set. Identity of an instrument in
// the registry is (name, sorted label pairs).
type Labels map[string]string

// key renders the canonical identity suffix of a label set.
func (l Labels) key() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, escapeLabel(l[k]))
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	// Prometheus label values escape backslash, double-quote and newline.
	// %q handles backslash and quote; translate newlines explicitly.
	return strings.ReplaceAll(v, "\n", `\n`)
}

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta (negative deltas are ignored: counters are monotonic).
func (c *Counter) Add(delta int64) {
	if delta > 0 {
		c.v.Add(delta)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta to the current value.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Exemplar links one observed value to the trace that produced it, per
// the OpenMetrics exemplar model: scraping tooling can jump from a
// latency bucket straight to the request trace behind it.
type Exemplar struct {
	Value   float64
	TraceID string
	Time    time.Time
}

// Histogram observes a distribution of values over configurable
// cumulative buckets, Prometheus-style: bucket i counts observations
// <= UpperBounds[i], with an implicit +Inf bucket holding everything.
type Histogram struct {
	mu        sync.Mutex
	bounds    []float64   // strictly increasing upper bounds, +Inf implicit
	counts    []int64     // len(bounds)+1; last is the +Inf bucket
	exemplars []*Exemplar // lazily allocated; latest exemplar per bucket
	sum       float64
	count     int64
}

// DefBuckets are the default histogram buckets, in seconds, spanning
// microsecond decode latencies to multi-second corpus stages.
func DefBuckets() []float64 {
	return []float64{
		1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
		1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
		0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
}

func newHistogram(bounds []float64) *Histogram {
	bs := make([]float64, 0, len(bounds))
	for _, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			continue // +Inf is implicit; NaN is meaningless as a bound
		}
		bs = append(bs, b)
	}
	sort.Float64s(bs)
	// Deduplicate equal bounds so exposition stays well-formed.
	dedup := bs[:0]
	for i, b := range bs {
		if i == 0 || b != bs[i-1] {
			dedup = append(dedup, b)
		}
	}
	bs = dedup
	return &Histogram{bounds: bs, counts: make([]int64, len(bs)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	// Find the first bucket whose bound is >= v.
	idx := sort.SearchFloat64s(h.bounds, v)
	h.mu.Lock()
	h.counts[idx]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// observeBulk records n observations of value v in one lock hold. The
// runtime-metrics bridge uses it to fold whole bucket deltas from
// runtime histograms into a registry histogram without n round trips.
func (h *Histogram) observeBulk(v float64, n int64) {
	if n <= 0 || math.IsNaN(v) {
		return
	}
	idx := sort.SearchFloat64s(h.bounds, v)
	h.mu.Lock()
	h.counts[idx] += n
	h.sum += v * float64(n)
	h.count += n
	h.mu.Unlock()
}

// ObserveWithExemplar records one value and remembers (traceID, v, now)
// as the owning bucket's exemplar, replacing any previous one. An empty
// traceID degrades to a plain Observe. Exemplars surface only in the
// OpenMetrics exposition (WriteOpenMetrics); the classic Prometheus
// text format has no legal syntax for them.
func (h *Histogram) ObserveWithExemplar(v float64, traceID string) {
	if traceID == "" {
		h.Observe(v)
		return
	}
	if math.IsNaN(v) {
		return
	}
	idx := sort.SearchFloat64s(h.bounds, v)
	now := time.Now()
	h.mu.Lock()
	h.counts[idx]++
	h.sum += v
	h.count++
	if h.exemplars == nil {
		h.exemplars = make([]*Exemplar, len(h.counts))
	}
	if ex := h.exemplars[idx]; ex != nil {
		// Overwrite in place — Snapshot deep-copies under the same lock,
		// so the steady-state observe path never allocates.
		ex.Value, ex.TraceID, ex.Time = v, traceID, now
	} else {
		h.exemplars[idx] = &Exemplar{Value: v, TraceID: traceID, Time: now}
	}
	h.mu.Unlock()
}

// HistogramSnapshot is a point-in-time copy of a histogram's state.
type HistogramSnapshot struct {
	UpperBounds []float64   // per-bucket upper bounds (exclusive of +Inf)
	Counts      []int64     // per-bucket (non-cumulative) counts; last is +Inf
	Exemplars   []*Exemplar // per-bucket latest exemplar (nil entries when none)
	Sum         float64
	Count       int64
}

// Snapshot returns a copy of the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	// Deep-copy exemplars: ObserveWithExemplar mutates them in place
	// under h.mu, so handing out the live pointers would race.
	var exs []*Exemplar
	if h.exemplars != nil {
		exs = make([]*Exemplar, len(h.exemplars))
		for i, ex := range h.exemplars {
			if ex != nil {
				cp := *ex
				exs[i] = &cp
			}
		}
	}
	return HistogramSnapshot{
		UpperBounds: append([]float64(nil), h.bounds...),
		Counts:      append([]int64(nil), h.counts...),
		Exemplars:   exs,
		Sum:         h.sum,
		Count:       h.count,
	}
}

// Quantile estimates the q-quantile (0..1) by linear interpolation
// within the owning bucket; it returns 0 with no observations. The last
// bucket is approximated by its lower bound.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var cum int64
	for i, c := range s.Counts {
		prev := cum
		cum += c
		if float64(cum) < rank {
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = s.UpperBounds[i-1]
		}
		if i >= len(s.UpperBounds) { // +Inf bucket
			return lo
		}
		hi := s.UpperBounds[i]
		if c == 0 {
			return hi
		}
		frac := (rank - float64(prev)) / float64(c)
		return lo + (hi-lo)*frac
	}
	if n := len(s.UpperBounds); n > 0 {
		return s.UpperBounds[n-1]
	}
	return 0
}

// metricKind tags an instrument for exposition.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

type metric struct {
	name   string
	help   string
	kind   metricKind
	labels Labels
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
}

// Registry is a concurrent-safe set of named instruments. Registering
// the same (name, labels) twice returns the existing instrument, so
// call sites may re-register idempotently.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric // keyed by name + label key
	order   []string           // registration order of keys

	collectMu    sync.Mutex
	collectors   map[string]func()
	collectOrder []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

func (r *Registry) register(name, help string, kind metricKind, labels Labels) *metric {
	key := name + labels.key()
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[key]; ok {
		return m
	}
	m := &metric{name: name, help: help, kind: kind, labels: labels}
	switch kind {
	case kindCounter:
		m.ctr = &Counter{}
	case kindGauge:
		m.gauge = &Gauge{}
	}
	r.metrics[key] = m
	r.order = append(r.order, key)
	return m
}

// Counter returns the counter registered under (name, labels), creating
// it on first use.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	return r.register(name, help, kindCounter, labels).ctr
}

// Gauge returns the gauge registered under (name, labels), creating it
// on first use.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	return r.register(name, help, kindGauge, labels).gauge
}

// Histogram returns the histogram registered under (name, labels) with
// the given bucket upper bounds (nil: DefBuckets), creating it on first
// use. Buckets are fixed at first registration.
func (r *Registry) Histogram(name, help string, buckets []float64, labels Labels) *Histogram {
	key := name + labels.key()
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[key]; ok {
		return m.hist
	}
	if buckets == nil {
		buckets = DefBuckets()
	}
	m := &metric{name: name, help: help, kind: kindHistogram, labels: labels, hist: newHistogram(buckets)}
	r.metrics[key] = m
	r.order = append(r.order, key)
	return m.hist
}

// OnCollect registers a hook that runs at the start of every
// WritePrometheus call, before the registry is rendered. Hooks pull
// lazily-maintained values (e.g. package-level atomic totals) into
// registered instruments right before exposition, so the instrument
// values are current without per-event registry traffic. Hooks are
// deduplicated by name — re-registering an existing name is a no-op —
// and run in first-registration order, outside the registry lock (they
// may register or update instruments freely).
func (r *Registry) OnCollect(name string, fn func()) {
	r.collectMu.Lock()
	defer r.collectMu.Unlock()
	if r.collectors == nil {
		r.collectors = make(map[string]func())
	}
	if _, ok := r.collectors[name]; ok {
		return
	}
	r.collectors[name] = fn
	r.collectOrder = append(r.collectOrder, name)
}

// runCollectors invokes the OnCollect hooks in registration order.
func (r *Registry) runCollectors() {
	r.collectMu.Lock()
	hooks := make([]func(), 0, len(r.collectOrder))
	for _, name := range r.collectOrder {
		hooks = append(hooks, r.collectors[name])
	}
	r.collectMu.Unlock()
	for _, fn := range hooks {
		fn()
	}
}

// family is one exposition group: every series sharing a metric name.
type family struct {
	name, help string
	kind       metricKind
	series     []*metric
}

// families snapshots the registry grouped by metric name, families in
// first-registration order and series within a family in label order.
func (r *Registry) families() []*family {
	r.mu.Lock()
	var fams []*family
	byName := make(map[string]*family)
	for _, key := range r.order {
		m := r.metrics[key]
		f, ok := byName[m.name]
		if !ok {
			f = &family{name: m.name, help: m.help, kind: m.kind}
			byName[m.name] = f
			fams = append(fams, f)
		}
		f.series = append(f.series, m)
	}
	r.mu.Unlock()
	for _, f := range fams {
		sort.Slice(f.series, func(i, j int) bool {
			return f.series[i].labels.key() < f.series[j].labels.key()
		})
	}
	return fams
}

// WritePrometheus renders every registered instrument in the Prometheus
// text exposition format (version 0.0.4), grouped by metric name with
// one # HELP/# TYPE header per family, families in first-registration
// order and series within a family in label order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.runCollectors()
	var b strings.Builder
	for _, f := range r.families() {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, [...]string{"counter", "gauge", "histogram"}[f.kind])
		for _, m := range f.series {
			switch m.kind {
			case kindCounter:
				fmt.Fprintf(&b, "%s%s %d\n", m.name, m.labels.key(), m.ctr.Value())
			case kindGauge:
				fmt.Fprintf(&b, "%s%s %s\n", m.name, m.labels.key(), formatFloat(m.gauge.Value()))
			case kindHistogram:
				s := m.hist.Snapshot()
				var cum int64
				for i, bound := range s.UpperBounds {
					cum += s.Counts[i]
					fmt.Fprintf(&b, "%s_bucket%s %d\n", m.name, withLabel(m.labels, "le", formatFloat(bound)), cum)
				}
				cum += s.Counts[len(s.Counts)-1]
				fmt.Fprintf(&b, "%s_bucket%s %d\n", m.name, withLabel(m.labels, "le", "+Inf"), cum)
				fmt.Fprintf(&b, "%s_sum%s %s\n", m.name, m.labels.key(), formatFloat(s.Sum))
				fmt.Fprintf(&b, "%s_count%s %d\n", m.name, m.labels.key(), s.Count)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// OpenMetricsContentType is the content type of WriteOpenMetrics output.
const OpenMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// WriteOpenMetrics renders the registry in the OpenMetrics 1.0 text
// format. It differs from WritePrometheus in the ways the spec demands —
// counter families drop their "_total" suffix in # TYPE lines, the
// output terminates with "# EOF" — and in the one way that matters:
// histogram buckets carry trace-ID exemplars ("# {trace_id=...} v ts"),
// which the classic 0.0.4 format cannot legally express. Serve this
// when the scrape's Accept header asks for application/openmetrics-text.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	r.runCollectors()
	var b strings.Builder
	for _, f := range r.families() {
		famName := f.name
		if f.kind == kindCounter {
			famName = strings.TrimSuffix(famName, "_total")
		}
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", famName, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", famName, [...]string{"counter", "gauge", "histogram"}[f.kind])
		for _, m := range f.series {
			switch m.kind {
			case kindCounter:
				fmt.Fprintf(&b, "%s_total%s %d\n", famName, m.labels.key(), m.ctr.Value())
			case kindGauge:
				fmt.Fprintf(&b, "%s%s %s\n", m.name, m.labels.key(), formatFloat(m.gauge.Value()))
			case kindHistogram:
				s := m.hist.Snapshot()
				var cum int64
				for i := range s.Counts {
					cum += s.Counts[i]
					le := "+Inf"
					if i < len(s.UpperBounds) {
						le = formatFloat(s.UpperBounds[i])
					}
					fmt.Fprintf(&b, "%s_bucket%s %d", m.name, withLabel(m.labels, "le", le), cum)
					if i < len(s.Exemplars) && s.Exemplars[i] != nil {
						ex := s.Exemplars[i]
						fmt.Fprintf(&b, " # {trace_id=%q} %s %s",
							escapeLabel(ex.TraceID), formatFloat(ex.Value),
							formatFloat(float64(ex.Time.UnixNano())/1e9))
					}
					b.WriteByte('\n')
				}
				fmt.Fprintf(&b, "%s_sum%s %s\n", m.name, m.labels.key(), formatFloat(s.Sum))
				fmt.Fprintf(&b, "%s_count%s %d\n", m.name, m.labels.key(), s.Count)
			}
		}
	}
	b.WriteString("# EOF\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// withLabel renders a label key including one extra pair (used for the
// histogram "le" bound).
func withLabel(l Labels, k, v string) string {
	merged := make(Labels, len(l)+1)
	for key, val := range l {
		merged[key] = val
	}
	merged[k] = v
	return merged.key()
}

// formatFloat renders a float the way Prometheus expects: shortest
// representation, integers without exponent where possible.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%d", int64(v))
	default:
		return fmt.Sprintf("%g", v)
	}
}
