package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/mosaic-hpc/mosaic/internal/ring"
	"github.com/mosaic-hpc/mosaic/internal/store"
)

// testCluster is an in-process multi-node cluster: real TCP between
// nodes, real HTTP in front of each.
type testCluster struct {
	nodes []*clusterTestNode
}

type clusterTestNode struct {
	id   string
	srv  *Server
	http *httptest.Server
	rpc  net.Listener
}

// startTestCluster boots n serve nodes wired into one ring, with
// failure-detection and repair timers tightened for test speed.
func startTestCluster(t *testing.T, n int) *testCluster {
	t.Helper()
	listeners := make([]net.Listener, n)
	members := make([]ring.Node, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		members[i] = ring.Node{ID: fmt.Sprintf("node-%d", i), Addr: l.Addr().String()}
	}
	tc := &testCluster{}
	for i := 0; i < n; i++ {
		st, err := store.Open(t.TempDir(), store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		rcfg := ring.Config{
			Self:          members[i].ID,
			Nodes:         members,
			Replication:   2,
			ReplicaAck:    1,
			ProbeInterval: 50 * time.Millisecond,
			RPCTimeout:    2 * time.Second,
			HedgeAfter:    20 * time.Millisecond,
			HintRetry:     100 * time.Millisecond,
			RepairAfter:   300 * time.Millisecond,
		}
		srv, err := New(Config{Store: st, Workers: 2, QueueDepth: 256, Cluster: &rcfg})
		if err != nil {
			t.Fatal(err)
		}
		node := &clusterTestNode{id: members[i].ID, srv: srv, rpc: listeners[i]}
		go srv.ServeCluster(listeners[i]) //nolint:errcheck
		node.http = httptest.NewServer(srv.Handler())
		tc.nodes = append(tc.nodes, node)
		t.Cleanup(func() { st.Close() })
	}
	t.Cleanup(func() {
		for _, nd := range tc.nodes {
			nd.http.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			nd.srv.Shutdown(ctx)
			cancel()
		}
	})
	return tc
}

// acked collects the IDs a batch response acknowledged (any status that
// promises durability).
func acked(t *testing.T, ir ingestResponse) []store.TraceID {
	t.Helper()
	var out []store.TraceID
	for _, it := range ir.Results {
		switch it.Status {
		case StatusAccepted, StatusPending, StatusCached:
			if it.ID == "" {
				t.Fatalf("acked item without ID: %+v", it)
			}
			out = append(out, it.ID)
		default:
			t.Fatalf("batch item not acked: %+v", it)
		}
	}
	return out
}

// waitQueryAll polls node's /v1/query until every want ID appears (all
// test traces are write_on_end) or the deadline passes.
func waitQueryAll(t *testing.T, node *clusterTestNode, want []store.TraceID, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	var missing []store.TraceID
	for time.Now().Before(deadline) {
		resp, body := getBody(t, node.http.URL+"/v1/query?q=write_on_end")
		if resp.StatusCode != 200 {
			t.Fatalf("query on %s: status %d: %s", node.id, resp.StatusCode, body)
		}
		var qr struct {
			IDs []store.TraceID `json:"ids"`
		}
		if err := json.Unmarshal([]byte(body), &qr); err != nil {
			t.Fatal(err)
		}
		have := make(map[store.TraceID]bool, len(qr.IDs))
		for _, id := range qr.IDs {
			have[id] = true
		}
		missing = missing[:0]
		for _, id := range want {
			if !have[id] {
				missing = append(missing, id)
			}
		}
		if len(missing) == 0 {
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("query on %s: %d/%d acked traces missing after %v: %v",
		node.id, len(missing), len(want), within, missing)
}

func TestClusterIngestQueryStats(t *testing.T) {
	tc := startTestCluster(t, 3)

	// Batch-ingest through one node; traces scatter to their ring owners.
	var blobs [][]byte
	for seed := 0; seed < 12; seed++ {
		blobs = append(blobs, encodeJob(t, testJob(seed)))
	}
	resp, ir := postBatch(t, tc.nodes[0].http.URL, BatchContentType, batchBody(blobs...))
	if resp.StatusCode != 202 {
		t.Fatalf("batch ingest: status %d", resp.StatusCode)
	}
	ids := acked(t, ir)
	if len(ids) != len(blobs) {
		t.Fatalf("acked %d of %d", len(ids), len(blobs))
	}

	// Every node answers the full result set via scatter-gather.
	for _, nd := range tc.nodes {
		waitQueryAll(t, nd, ids, 15*time.Second)
	}

	// Result reads route cross-shard (hedged when needed).
	for _, id := range ids {
		body := waitResult(t, tc.nodes[1].http.URL, id)
		if body == "" {
			t.Fatalf("empty result for %s", id)
		}
	}

	// The routing table is identical everywhere and reports 3 members.
	var version string
	for _, nd := range tc.nodes {
		resp, body := getBody(t, nd.http.URL+"/v1/cluster")
		if resp.StatusCode != 200 {
			t.Fatalf("/v1/cluster on %s: %d", nd.id, resp.StatusCode)
		}
		var info ring.Info
		if err := json.Unmarshal([]byte(body), &info); err != nil {
			t.Fatal(err)
		}
		if len(info.Nodes) != 3 || info.Self != nd.id {
			t.Fatalf("/v1/cluster on %s: %+v", nd.id, info)
		}
		if version == "" {
			version = info.Version
		} else if info.Version != version {
			t.Fatalf("table version disagrees: %s vs %s", info.Version, version)
		}
	}

	// Clustered stats carry one entry per node, all up.
	resp, body := getBody(t, tc.nodes[2].http.URL+"/v1/stats")
	if resp.StatusCode != 200 {
		t.Fatalf("/v1/stats: %d", resp.StatusCode)
	}
	var st StatsResponse
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if len(st.Nodes) != 3 {
		t.Fatalf("stats from %d nodes, want 3: %s", len(st.Nodes), body)
	}
	total := int64(0)
	for _, ns := range st.Nodes {
		if !ns.Up {
			t.Fatalf("node %s reported down: %s", ns.Node, body)
		}
		total += ns.Traces
	}
	// RF=2: every trace is stored exactly twice across the cluster.
	if total != int64(2*len(ids)) {
		t.Fatalf("cluster holds %d trace copies, want %d", total, 2*len(ids))
	}
}

// TestClusterKillOwnerMidIngest is the failure drill the replication
// design is for: batches land while one node is killed outright;
// every trace the cluster ACKED must remain queryable from the
// survivors — served by replica copies, categorized by the repair path
// when the owner died holding the only result.
func TestClusterKillOwnerMidIngest(t *testing.T) {
	tc := startTestCluster(t, 3)
	victim := tc.nodes[2]
	entry := tc.nodes[0]

	var ids []store.TraceID
	seed := 0
	batch := func(n int) {
		var blobs [][]byte
		for ; n > 0; n-- {
			blobs = append(blobs, encodeJob(t, testJob(seed)))
			seed++
		}
		resp, ir := postBatch(t, entry.http.URL, BatchContentType, batchBody(blobs...))
		if resp.StatusCode != 202 {
			t.Fatalf("batch ingest: status %d", resp.StatusCode)
		}
		got := acked(t, ir)
		if len(got) != len(blobs) {
			t.Fatalf("acked %d of %d", len(got), len(blobs))
		}
		ids = append(ids, got...)
	}

	// Healthy ingest first: the victim owns (or replicates) a share of
	// these, including some results only it has computed yet.
	batch(10)

	// SIGKILL stand-in: listener and every connection die mid-flight.
	victim.srv.Kill()
	victim.http.Close()

	// Keep ingesting while the survivors discover the death. Routing
	// retries inside the request, so even batches racing the failure
	// detector must come back fully acked.
	for i := 0; i < 4; i++ {
		batch(5)
		time.Sleep(30 * time.Millisecond)
	}

	// Every acked trace — from before and after the kill — must be
	// queryable from both survivors. RF=2 guarantees a surviving copy of
	// pre-kill traces; the repair loop re-categorizes replicas whose
	// owner died before pushing the result.
	for _, nd := range tc.nodes[:2] {
		waitQueryAll(t, nd, ids, 30*time.Second)
	}

	// Partial-failure visibility: the scatter-gather stats response
	// reports the dead member as down rather than omitting it.
	resp, body := getBody(t, entry.http.URL+"/v1/stats")
	if resp.StatusCode != 200 {
		t.Fatalf("/v1/stats: %d", resp.StatusCode)
	}
	var st StatsResponse
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	down := 0
	for _, ns := range st.Nodes {
		if !ns.Up {
			down++
			if ns.Node != victim.id {
				t.Fatalf("wrong node reported down: %s", body)
			}
		}
	}
	if down != 1 {
		t.Fatalf("stats reports %d nodes down, want 1: %s", down, body)
	}

	// And results stay readable from a survivor (hedged reads skip the
	// corpse).
	for _, id := range ids {
		waitResult(t, tc.nodes[1].http.URL, id)
	}
}
