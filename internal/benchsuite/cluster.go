package benchsuite

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/mosaic-hpc/mosaic/internal/darshan"
	"github.com/mosaic-hpc/mosaic/internal/ring"
	"github.com/mosaic-hpc/mosaic/internal/serve"
	"github.com/mosaic-hpc/mosaic/internal/store"
)

// The cluster benchmarks pin the sharded serve tier's scaling contract.
// Each ingest pin pushes one batch of fresh mid-size traces through the
// full clustered pipeline of an in-process cluster — decode, content
// addressing, ring routing, forwarding RPCs, durable persist,
// replication, categorization, result push — and waits until every
// trace is fully served (no categorization pending anywhere). At n=1
// the identical code runs with no peers, so every ratio against
// ingest_n1 is exactly the per-batch cost of the feature it isolates.
//
// CI runs on one core, so the pinned numbers are CPU-normalized: the
// benchmark charges ALL four nodes' work to one core, where a real
// four-node deployment runs it on four. Under saturation a four-node
// cluster's aggregate ingest throughput is therefore 4·t1/t4.
//
// Two axes are pinned separately, because they buy different things:
//
//   - ingest_n4_rf1 is pure sharding (replication off). The scaling
//     contract — at least 2.5× aggregate throughput at four nodes
//     versus one, i.e. t4 ≤ 1.6·t1 — is enforced here, and holds with
//     room to spare (measured ratio ≈ 1.1–1.2, aggregate ≈ 3.3–3.6×).
//   - ingest_n4_rf2 prices fault tolerance on top: every acked trace
//     is durable on two nodes and its result is pushed to its replica,
//     roughly 1.7× the RF=1 batch cost (aggregate ≈ 2.1–2.2×). Pinning
//     it keeps the replication tax — transport, follower persist,
//     result push — from drifting unnoticed.
//
// The final pin, scatter_query_n4, is the fan-out read path over a
// fixed corpus at RF=2: routing-table fan-out, four shard-local
// evaluations, k-way merge of the sorted answers.

// clusterBatchSize is the traces per pinned batch: large enough that
// per-trace pipeline work dominates per-batch RPC latency, small enough
// to keep the gate fast.
const clusterBatchSize = 32

// benchCluster is an in-process cluster of serve nodes behind one entry
// handler, plus the deterministic fresh-trace generator.
type benchCluster struct {
	servers []*serve.Server
	entry   *serve.Server
	total   int
}

// startBenchCluster boots the cluster; teardown happens via b.Cleanup.
func startBenchCluster(b *testing.B, nodes, rf int) *benchCluster {
	listeners := make([]net.Listener, nodes)
	members := make([]ring.Node, nodes)
	for i := range members {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		listeners[i] = l
		members[i] = ring.Node{ID: fmt.Sprintf("bench-%d", i), Addr: l.Addr().String()}
	}
	bc := &benchCluster{}
	for i := range members {
		st, err := store.Open(b.TempDir(), store.Options{})
		if err != nil {
			b.Fatal(err)
		}
		s, err := serve.New(serve.Config{
			Store: st, Workers: 2, QueueDepth: 2 * clusterBatchSize,
			NoBackfill: true, DisableTracing: true,
			Cluster: &ring.Config{
				Self:        members[i].ID,
				Nodes:       members,
				Replication: rf,
				ReplicaAck:  min(rf-1, 1),
				RPCTimeout:  30 * time.Second,
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		bc.servers = append(bc.servers, s)
		go s.ServeCluster(listeners[i]) //nolint:errcheck
		b.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			s.Shutdown(ctx)
			st.Close()
		})
	}
	bc.entry = bc.servers[0]
	return bc
}

// freshBatch encodes clusterBatchSize never-before-seen traces:
// variants of the pinned mid-size ingest trace differing only in JobID,
// so every batch pays the full pipeline, never the dedup shortcut.
func (bc *benchCluster) freshBatch(b *testing.B) []byte {
	base := ingestTrace()
	var body []byte
	for k := 0; k < clusterBatchSize; k++ {
		j := *base
		j.JobID = uint64(100_000 + bc.total)
		bc.total++
		blob, err := darshan.MarshalBinary(&j)
		if err != nil {
			b.Fatal(err)
		}
		body = serve.AppendBatchFrame(body, blob)
	}
	return body
}

func (bc *benchCluster) postBatch(b *testing.B, body []byte) {
	req := httptest.NewRequest("POST", "/v1/traces:batch", bytes.NewReader(body))
	req.Header.Set("Content-Type", serve.BatchContentType)
	rec := httptest.NewRecorder()
	bc.entry.Handler().ServeHTTP(rec, req)
	if rec.Code >= 300 {
		b.Fatalf("batch ingest answered %d: %s", rec.Code, rec.Body.String())
	}
}

// waitServed blocks until no node holds a pending categorization: every
// acknowledged trace is durable, categorized and indexed at its owner.
// The signal is O(1) per node regardless of how much the benchmark has
// accumulated, so per-iteration cost does not drift with b.N.
func (bc *benchCluster) waitServed(b *testing.B) {
	deadline := time.Now().Add(60 * time.Second)
	for {
		pending := 0
		for _, s := range bc.servers {
			pending += s.PendingCount()
		}
		if pending == 0 {
			return
		}
		if time.Now().After(deadline) {
			b.Fatalf("cluster never converged: %d still pending", pending)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// ClusterIngest measures one fresh batch, ingest-to-served, against an
// in-process cluster of the given size and replication factor (pinned
// as BenchmarkCluster/ingest_n1, _n4_rf1 and _n4_rf2).
func ClusterIngest(nodes, rf int) func(b *testing.B) {
	return func(b *testing.B) {
		bc := startBenchCluster(b, nodes, rf)
		// One warmup batch settles pools, caches and peer connections.
		warm := bc.freshBatch(b)
		bc.postBatch(b, warm)
		bc.waitServed(b)
		b.SetBytes(int64(len(warm)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			body := bc.freshBatch(b) // client-side work, not cluster cost
			b.StartTimer()
			bc.postBatch(b, body)
			bc.waitServed(b)
		}
	}
}

// ClusterScatterQuery measures one scatter-gather query over a fixed
// fully-served corpus on a four-node cluster (pinned as
// BenchmarkCluster/scatter_query_n4): routing-table fan-out, four
// shard-local evaluations, k-way merge of the sorted answers.
func ClusterScatterQuery(nodes int) func(b *testing.B) {
	return func(b *testing.B) {
		bc := startBenchCluster(b, nodes, 2)
		bc.postBatch(b, bc.freshBatch(b))
		bc.waitServed(b)
		h := bc.entry.Handler()
		query := func() {
			req := httptest.NewRequest("GET", "/v1/query?q=write_on_end+OR+NOT+write_on_end", nil)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != 200 {
				b.Fatalf("query answered %d: %s", rec.Code, rec.Body.String())
			}
			var qr struct {
				Count   int  `json:"count"`
				Partial bool `json:"partial"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &qr); err != nil {
				b.Fatal(err)
			}
			if qr.Partial || qr.Count != clusterBatchSize {
				b.Fatalf("scatter query answered %d traces (partial=%v), want %d",
					qr.Count, qr.Partial, clusterBatchSize)
			}
		}
		query() // warm peer connections on the read path
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			query()
		}
	}
}
