package mosaic_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"github.com/mosaic-hpc/mosaic"
)

func TestAnonymizeFacade(t *testing.T) {
	job := &mosaic.Job{
		JobID: 1, User: "alice", Exe: "/apps/bin/secret-code", NProcs: 4,
		Runtime: 100, End: 100,
		Metadata: map[string]string{"note": "private"},
		Records: []mosaic.FileRecord{{
			Module: mosaic.ModPOSIX, Path: "/scratch/alice/input.dat",
			C: mosaic.Counters{Reads: 1, BytesRead: 1 << 20, ReadStart: 1, ReadEnd: 2},
		}},
	}
	mosaic.Anonymize(job, "salt")
	if job.User == "alice" || strings.Contains(job.Exe, "secret") {
		t.Fatal("identity leaked")
	}
	if job.Metadata != nil {
		t.Fatal("metadata kept")
	}
	if strings.Contains(job.Records[0].Path, "input") {
		t.Fatal("path leaked")
	}
	if err := mosaic.Validate(job); err != nil {
		t.Fatalf("anonymized job invalid: %v", err)
	}
}

func TestWriteHeatmapFacade(t *testing.T) {
	agg := mosaic.NewAggregator()
	res := mosaic.MustCategorize(&mosaic.Job{
		JobID: 1, User: "u", Exe: "/bin/a", NProcs: 4, Runtime: 1000, End: 1000,
		Records: []mosaic.FileRecord{{
			Module: mosaic.ModPOSIX, Path: "/f",
			C: mosaic.Counters{Reads: 10, BytesRead: 1 << 30, ReadStart: 5, ReadEnd: 50},
		}},
	}, mosaic.DefaultConfig())
	agg.Add(res, 3)
	var buf bytes.Buffer
	mosaic.WriteHeatmap(&buf, agg, 0)
	if !strings.Contains(buf.String(), "read_on_start") {
		t.Fatalf("heatmap missing category:\n%s", buf.String())
	}
}

func TestWriteTimelineFacade(t *testing.T) {
	job := &mosaic.Job{
		JobID: 2, User: "u", Exe: "/bin/b", NProcs: 4, Runtime: 1000, End: 1000,
		Records: []mosaic.FileRecord{{
			Module: mosaic.ModPOSIX, Path: "/f",
			C: mosaic.Counters{Writes: 5, BytesWritten: 1 << 30, WriteStart: 900, WriteEnd: 950},
		}},
	}
	res := mosaic.MustCategorize(job, mosaic.DefaultConfig())
	var buf bytes.Buffer
	mosaic.WriteTimeline(&buf, job, res, mosaic.DefaultConfig())
	if !strings.Contains(buf.String(), "writes (merged)") {
		t.Fatal("timeline facade broken")
	}
}

func TestCategorizeAllContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	jobs := []*mosaic.Job{{JobID: 1, User: "u", Exe: "/bin/c", NProcs: 1, Runtime: 10, End: 10}}
	if _, err := mosaic.CategorizeAll(ctx, jobs, mosaic.Options{}); err == nil {
		t.Fatal("cancelled context not surfaced")
	}
}

func TestMustCategorizePanicsOnPipelineFailure(t *testing.T) {
	// MustCategorize never panics on structurally valid jobs; exercise the
	// non-panic path and the ListCorpus facade together.
	dir := t.TempDir()
	if paths, err := mosaic.ListCorpus(dir); err != nil || len(paths) != 0 {
		t.Fatalf("empty corpus: %v %v", paths, err)
	}
}

func TestAllCategoriesFacade(t *testing.T) {
	all := mosaic.AllCategories()
	if len(all) != 32 {
		t.Fatalf("taxonomy size = %d, want 32", len(all))
	}
	if mosaic.PeriodicMagnitudeCat(mosaic.DirWrite, 2) == "" {
		t.Fatal("magnitude constructor broken")
	}
}

func TestTruthFacade(t *testing.T) {
	profile := mosaic.DefaultCorpusProfile()
	profile.Apps = 5
	profile.CorruptionRate = 0
	corpus := mosaic.PlanCorpus(profile)
	run := corpus.GenerateRun(corpus.Apps[0], 0)
	if mosaic.Truth(run.Job) == nil {
		t.Fatal("truth missing on generated trace")
	}
	if run.Job.Metadata[mosaic.TruthKey] == "" {
		t.Fatal("truth key missing")
	}
}
