package reqtrace

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// RecorderConfig configures a flight recorder.
type RecorderConfig struct {
	// Capacity is the ring size: how many completed request traces are
	// retained for /debug/requests (<= 0: 64). Retained traces are live
	// heap the GC re-scans every cycle, so capacity trades debugging
	// depth against collector load on busy servers.
	Capacity int
	// SlowThreshold, when > 0, dumps any request whose envelope
	// duration (root start to last span end, async work included)
	// exceeds it. The -slow-dump-ms flag lands here.
	SlowThreshold time.Duration
	// Dir receives Chrome-trace JSON dumps ("" disables dumping; the
	// ring keeps working). Created on first dump.
	Dir string
	// MaxDumps caps files written over the recorder's lifetime, so a
	// misbehaving deployment cannot fill a disk (<= 0: 64).
	MaxDumps int
	// Log receives dump/IO diagnostics (nil: silent).
	Log *slog.Logger
}

// Recorder is the black-box flight recorder: a fixed-size ring of the
// last N completed request traces, with automatic Chrome-trace dumps
// for errored or slow requests. Completion is O(1) under one short
// mutex hold (a pointer store); dumping happens outside the lock.
type Recorder struct {
	cfg RecorderConfig

	mu    sync.Mutex
	ring  []*Trace
	next  int
	total uint64

	dumps    atomic.Int64 // files successfully written
	dumpErrs atomic.Int64
	recorded atomic.Int64
	dirOnce  sync.Once
	dirErr   error
}

// NewRecorder builds a flight recorder.
func NewRecorder(cfg RecorderConfig) *Recorder {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 64
	}
	if cfg.MaxDumps <= 0 {
		cfg.MaxDumps = 64
	}
	return &Recorder{cfg: cfg, ring: make([]*Trace, cfg.Capacity)}
}

// Complete records one finalized trace — the Trace.OnDone target. Slow
// or errored traces are additionally dumped as Chrome-trace JSON.
func (r *Recorder) Complete(t *Trace) {
	r.mu.Lock()
	r.ring[r.next] = t
	r.next = (r.next + 1) % len(r.ring)
	r.total++
	r.mu.Unlock()
	r.recorded.Add(1)

	if r.cfg.Dir == "" {
		return
	}
	slow := r.cfg.SlowThreshold > 0 && t.Duration() > r.cfg.SlowThreshold
	if !slow && !t.Errored() {
		return
	}
	if r.dumps.Load() >= int64(r.cfg.MaxDumps) {
		return
	}
	path, err := r.dump(t)
	if err != nil {
		r.dumpErrs.Add(1)
		if r.cfg.Log != nil {
			r.cfg.Log.Warn("flight dump failed", "trace", t.ID().String(), "err", err)
		}
		return
	}
	r.dumps.Add(1)
	if r.cfg.Log != nil {
		r.cfg.Log.Info("flight dump written", "trace", t.ID().String(),
			"path", path, "slow", slow, "errored", t.Errored(), "dur", t.Duration())
	}
}

// Recorded returns how many traces have completed into the ring.
func (r *Recorder) Recorded() int64 { return r.recorded.Load() }

// Dumps returns how many dump files were written.
func (r *Recorder) Dumps() int64 { return r.dumps.Load() }

// DumpErrors returns how many dump attempts failed.
func (r *Recorder) DumpErrors() int64 { return r.dumpErrs.Load() }

// dump writes one trace as Chrome trace-event JSON into Dir.
func (r *Recorder) dump(t *Trace) (string, error) {
	r.dirOnce.Do(func() { r.dirErr = os.MkdirAll(r.cfg.Dir, 0o755) })
	if r.dirErr != nil {
		return "", r.dirErr
	}
	path := filepath.Join(r.cfg.Dir, "req-"+t.ID().String()+".trace.json")
	data, err := json.MarshalIndent(ChromeTrace(t), "", " ")
	if err != nil {
		return "", err
	}
	// Write-then-rename so a crash mid-dump never leaves a torn JSON
	// file for tooling to trip over.
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return "", err
	}
	if err := os.Rename(tmp, path); err != nil {
		return "", err
	}
	return path, nil
}

// DumpSnapshot writes every retained trace as one merged Chrome-trace
// JSON document at path — the flight-recorder half of an alert's
// diagnostic bundle. Each trace renders as its own process, so Perfetto
// shows the recent requests side by side.
func (r *Recorder) DumpSnapshot(path string) error {
	traces := r.snapshot()
	merged := chromeDoc{DisplayTimeUnit: "ms"}
	for i, t := range traces {
		doc := ChromeTrace(t).(chromeDoc)
		for j := range doc.TraceEvents {
			doc.TraceEvents[j].Pid = i + 1
		}
		merged.TraceEvents = append(merged.TraceEvents, doc.TraceEvents...)
	}
	data, err := json.MarshalIndent(merged, "", " ")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// snapshot returns the retained traces, newest first.
func (r *Recorder) snapshot() []*Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Trace, 0, len(r.ring))
	for i := 1; i <= len(r.ring); i++ {
		t := r.ring[(r.next-i+len(r.ring))%len(r.ring)]
		if t == nil {
			break
		}
		out = append(out, t)
	}
	return out
}

// laneOf maps a span name to its Chrome lane: the subsystem prefix
// before the first '.' or ':' ("store.commit" → "store").
func laneOf(name string) string {
	if i := strings.IndexAny(name, ".:"); i > 0 {
		return name[:i]
	}
	return name
}

// chromeEvent is one Chrome trace-event object.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"` // µs since the trace start
	Dur  float64           `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeDoc is the top-level trace-event JSON document.
type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ChromeTrace renders one request trace as a Perfetto-loadable Chrome
// trace document: one named lane per subsystem, one "X" event per
// span, span/parent IDs and attributes in args.
func ChromeTrace(t *Trace) any {
	spans := t.Spans()
	lanes := map[string]int{}
	order := []string{}
	for _, s := range spans {
		l := laneOf(s.Name)
		if _, ok := lanes[l]; !ok {
			lanes[l] = len(order)
			order = append(order, l)
		}
	}
	events := make([]chromeEvent, 0, len(spans)+len(order)+1)
	events = append(events, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 1,
		Args: map[string]string{"name": "request " + t.ID().String()},
	})
	for _, l := range order {
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: lanes[l],
			Args: map[string]string{"name": l},
		})
	}
	for _, s := range spans {
		args := map[string]string{
			"span_id": s.ID.String(),
			"parent":  s.Parent.String(),
		}
		for _, a := range s.Attrs {
			args[a.Key] = a.Value
		}
		if s.Err != "" {
			args["error"] = s.Err
		}
		if s.ID == t.root {
			args["request_id"] = t.reqID
			args["trace_id"] = t.id.String()
		}
		events = append(events, chromeEvent{
			Name: s.Name, Cat: laneOf(s.Name), Ph: "X",
			Ts:  float64(s.Start.Sub(t.start).Nanoseconds()) / 1e3,
			Dur: float64(s.Dur.Nanoseconds()) / 1e3,
			Pid: 1, Tid: lanes[laneOf(s.Name)],
			Args: args,
		})
	}
	return chromeDoc{TraceEvents: events, DisplayTimeUnit: "ms"}
}

// Summary is one /debug/requests row: a completed request with its
// per-phase latency breakdown.
type Summary struct {
	Trace     string             `json:"trace_id"`
	RequestID string             `json:"request_id,omitempty"`
	Method    string             `json:"method"`
	Route     string             `json:"route"`
	Status    int                `json:"status"`
	Start     time.Time          `json:"start"`
	DurMS     float64            `json:"dur_ms"` // envelope: edge to last span end
	Spans     int                `json:"spans"`
	Dropped   int                `json:"dropped_spans,omitempty"`
	Error     string             `json:"error,omitempty"`
	Phases    map[string]float64 `json:"phases_ms,omitempty"` // summed ms by span name
}

func summarize(t *Trace) Summary {
	spans := t.Spans()
	phases := make(map[string]float64, len(spans))
	for _, s := range spans {
		if s.ID == t.root {
			continue // the root is the envelope, not a phase
		}
		phases[s.Name] += float64(s.Dur.Nanoseconds()) / 1e6
	}
	return Summary{
		Trace:     t.ID().String(),
		RequestID: t.RequestID(),
		Method:    t.method,
		Route:     t.route,
		Status:    t.Status(),
		Start:     t.Start(),
		DurMS:     float64(t.Duration().Nanoseconds()) / 1e6,
		Spans:     len(spans),
		Dropped:   t.Dropped(),
		Error:     t.Err(),
		Phases:    phases,
	}
}

// SpanJSON is one span in a /debug/requests/{id} document.
type SpanJSON struct {
	ID      string  `json:"id"`
	Parent  string  `json:"parent,omitempty"`
	Name    string  `json:"name"`
	StartUS float64 `json:"start_us"` // offset from trace start
	DurUS   float64 `json:"dur_us"`
	Attrs   []Attr  `json:"attrs,omitempty"`
	Err     string  `json:"error,omitempty"`
}

// Detail is the full /debug/requests/{id} document: the summary row
// plus every span with parent links.
type Detail struct {
	Summary
	Traceparent string     `json:"traceparent"`
	SpanTree    []SpanJSON `json:"span_tree"`
}

// Recent returns up to n summaries, newest first (n <= 0: all
// retained).
func (r *Recorder) Recent(n int) []Summary {
	traces := r.snapshot()
	if n > 0 && n < len(traces) {
		traces = traces[:n]
	}
	out := make([]Summary, len(traces))
	for i, t := range traces {
		out[i] = summarize(t)
	}
	return out
}

// Get returns the full detail of one retained trace by 32-hex-char ID.
func (r *Recorder) Get(id string) (Detail, bool) {
	for _, t := range r.snapshot() {
		if t.ID().String() != id {
			continue
		}
		d := Detail{Summary: summarize(t), Traceparent: t.Traceparent()}
		for _, s := range t.Spans() {
			sj := SpanJSON{
				ID:      s.ID.String(),
				Name:    s.Name,
				StartUS: float64(s.Start.Sub(t.start).Nanoseconds()) / 1e3,
				DurUS:   float64(s.Dur.Nanoseconds()) / 1e3,
				Attrs:   s.Attrs,
				Err:     s.Err,
			}
			if !s.Parent.IsZero() {
				sj.Parent = s.Parent.String()
			}
			d.SpanTree = append(d.SpanTree, sj)
		}
		return d, true
	}
	return Detail{}, false
}

// RequestsDoc is the /debug/requests JSON document.
type RequestsDoc struct {
	Count    int       `json:"count"`
	Recorded int64     `json:"recorded"`
	Dumps    int64     `json:"dumps"`
	Requests []Summary `json:"requests"`
}

// Handler serves the flight-recorder debug API:
//
//	GET /debug/requests        recent requests, per-phase breakdown
//	                           (?limit=N; ?format=text for a table)
//	GET /debug/requests/{id}   full span tree of one request (404 when
//	                           it has rotated out of the ring)
func (r *Recorder) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /debug/requests", r.handleList)
	mux.HandleFunc("GET /debug/requests/{id}", r.handleGet)
	return mux
}

func (r *Recorder) handleList(w http.ResponseWriter, req *http.Request) {
	limit := 0
	if lv := req.URL.Query().Get("limit"); lv != "" {
		n, err := strconv.Atoi(lv)
		if err != nil || n < 0 {
			writeDebugJSON(w, http.StatusBadRequest, map[string]string{"error": "limit must be a non-negative integer"})
			return
		}
		limit = n
	}
	sums := r.Recent(limit)
	if req.URL.Query().Get("format") == "text" || wantsText(req) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		writeSummaryTable(w, sums)
		return
	}
	writeDebugJSON(w, http.StatusOK, RequestsDoc{
		Count: len(sums), Recorded: r.Recorded(), Dumps: r.Dumps(), Requests: sums,
	})
}

func (r *Recorder) handleGet(w http.ResponseWriter, req *http.Request) {
	id := strings.ToLower(req.PathValue("id"))
	d, ok := r.Get(id)
	if !ok {
		writeDebugJSON(w, http.StatusNotFound, map[string]string{"error": "unknown or rotated-out request trace"})
		return
	}
	writeDebugJSON(w, http.StatusOK, d)
}

// wantsText reports whether the request prefers a human table: an
// Accept header naming text/plain without application/json.
func wantsText(req *http.Request) bool {
	a := req.Header.Get("Accept")
	return strings.Contains(a, "text/plain") && !strings.Contains(a, "application/json")
}

func writeDebugJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeSummaryTable renders the recent-request table, one row per
// request with the dominant phases inline.
func writeSummaryTable(w http.ResponseWriter, sums []Summary) {
	fmt.Fprintf(w, "%-32s  %-6s %-22s %6s %10s  %s\n",
		"trace", "status", "route", "spans", "dur_ms", "phases")
	for _, s := range sums {
		names := make([]string, 0, len(s.Phases))
		for n := range s.Phases {
			names = append(names, n)
		}
		sort.Slice(names, func(i, j int) bool { return s.Phases[names[i]] > s.Phases[names[j]] })
		var b strings.Builder
		for i, n := range names {
			if i > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%s=%.2fms", n, s.Phases[n])
		}
		status := strconv.Itoa(s.Status)
		if s.Error != "" {
			status += "!"
		}
		fmt.Fprintf(w, "%-32s  %-6s %-22s %6d %10.2f  %s\n",
			s.Trace, status, s.Method+" "+s.Route, s.Spans, s.DurMS, b.String())
	}
}
