// Package segment implements MOSAIC's trace segmentation and
// segmentation-based periodic-operation detection (Section III-B3a).
//
// After merging, the trace is divided into segments: a segment starts at
// the beginning of an I/O operation and ends at the beginning of the next
// one (the last segment ends at the end of the execution). Each segment is
// described by its duration and the volume of data moved by the operation
// that opens it. Segments sharing comparable duration and volume are
// grouped with Mean Shift; any group with more than one member is a
// periodic operation.
package segment

import (
	"math"

	"github.com/mosaic-hpc/mosaic/internal/category"
	"github.com/mosaic-hpc/mosaic/internal/cluster"
	"github.com/mosaic-hpc/mosaic/internal/interval"
)

// Segment spans from the start of one merged operation to the start of the
// next.
type Segment struct {
	Op       interval.Interval // the operation opening the segment
	Duration float64           // inter-arrival time to the next operation (or to end of run)
}

// Split segments a merged, sorted operation list. runtime closes the last
// segment. Operations must be disjoint and sorted (the output of
// interval.Merge); Split does not re-sort.
func Split(ops []interval.Interval, runtime float64) []Segment {
	segs := make([]Segment, len(ops))
	for i, op := range ops {
		end := runtime
		if i+1 < len(ops) {
			end = ops[i+1].Start
		}
		d := end - op.Start
		if d < 0 {
			d = 0
		}
		segs[i] = Segment{Op: op, Duration: d}
	}
	return segs
}

// FeatureConfig controls how segments are embedded into the 2D feature
// space used for clustering.
type FeatureConfig struct {
	// Runtime normalizes segment durations so that the duration axis is
	// a fraction of the execution. Must be > 0.
	Runtime float64
	// VolumeLogScale divides log2(1+bytes) to put the volume axis on a
	// comparable scale; with the default 64, one unit spans the entire
	// representable byte range, and a 2x volume change moves a point by
	// 1/64 ≈ 0.016.
	VolumeLogScale float64
}

// DefaultVolumeLogScale is the default divisor for the log-volume axis.
const DefaultVolumeLogScale = 64

// Features embeds segments as (duration/runtime, log2(1+bytes)/scale)
// points. This scaling realizes the paper's "comparable duration and data
// size" criterion: the Mean Shift bandwidth then expresses, in one number,
// how much two occurrences of the same logical operation may drift apart
// in time and volume.
// Feature points are 2-D and always allocated as headers over one
// contiguous float64 backing store (two allocations total, independent
// of the segment count), which is also the layout the accelerated
// clustering engine flattens into.
func Features(segs []Segment, cfg FeatureConfig) []cluster.Point {
	pts := make([]cluster.Point, len(segs))
	backing := make([]float64, 2*len(segs))
	for i := range pts {
		pts[i] = backing[2*i : 2*i+2 : 2*i+2]
	}
	fillFeatures(pts, segs, cfg)
	return pts
}

// fillFeatures writes the feature embedding of segs into pts, which must
// hold len(segs) 2-D points.
func fillFeatures(pts []cluster.Point, segs []Segment, cfg FeatureConfig) {
	scale := cfg.VolumeLogScale
	if scale <= 0 {
		scale = DefaultVolumeLogScale
	}
	rt := cfg.Runtime
	if rt <= 0 {
		rt = 1
	}
	for i, s := range segs {
		pts[i][0] = s.Duration / rt
		pts[i][1] = math.Log2(1+float64(s.Op.Bytes)) / scale
	}
}

// Group is a detected periodic operation: a cluster of at least two
// segments with comparable duration and volume.
type Group struct {
	Count     int                      // number of occurrences
	Period    float64                  // mean inter-arrival time, seconds
	Magnitude category.PeriodMagnitude // order of magnitude of the period
	MeanBytes float64                  // mean volume per occurrence
	BusyRatio float64                  // mean fraction of the period spent doing I/O
	Segments  []int                    // indices into the segment slice
}

// ClusterTrace describes one Mean Shift cluster — accepted or not — for
// decision provenance: its size, converged centroid, per-axis member
// spread, the period it implies, the runtime coverage of its members,
// and the reason it was (not) promoted to a periodic group.
type ClusterTrace struct {
	Size             int
	CentroidDuration float64 // feature space: duration/runtime
	CentroidVolume   float64 // feature space: log2(1+bytes)/scale
	SpreadDuration   float64 // member stddev along the duration axis
	SpreadVolume     float64 // member stddev along the volume axis
	Period           float64 // mean member inter-arrival time, seconds
	MeanBytes        float64
	Coverage         float64 // member span / runtime
	Accepted         bool
	Reason           string // "accepted" | "size" | "coverage"
}

// Cluster rejection reasons recorded in ClusterTrace.Reason.
const (
	ClusterAccepted         = "accepted"
	ClusterRejectedSize     = "size"
	ClusterRejectedCoverage = "coverage"
)

// DetectTrace, when attached to a DetectConfig, collects the clustering
// evidence Detect normally discards: the number of segments clustered
// and every cluster with its statistics and verdict. Clusters appear in
// cluster-id order (deterministic for a given input).
type DetectTrace struct {
	Segments int
	Clusters []ClusterTrace
}

// DetectConfig parametrizes periodic-group detection.
type DetectConfig struct {
	// Bandwidth is the Mean Shift bandwidth in feature-space units
	// (default 0.05 — set empirically like the paper's thresholds:
	// occurrences may drift by 5% of the runtime in cadence or ~8x in
	// volume and still group).
	Bandwidth float64
	// Kernel is the Mean Shift kernel (default flat, like the paper's
	// scikit-learn).
	Kernel cluster.Kernel
	// MinGroupSize is the minimum cluster size to call a group periodic
	// (paper: strictly greater than 1, i.e. 2).
	MinGroupSize int
	// Feature scaling.
	Features FeatureConfig
	// MinCoverage is the minimum fraction of the runtime the group's
	// occurrences must span for the periodicity to be meaningful; it
	// guards against two accidental near-identical operations at the
	// very start of a long job (default 0.5).
	MinCoverage float64
	// Trace, when non-nil, receives the clustering evidence (every
	// cluster with size/centroid/spread and its verdict). Detection
	// results are identical with or without it; nil costs nothing.
	Trace *DetectTrace
	// BinSeeding, when true, asks Mean Shift to seed from occupied grid
	// cells instead of every segment — much faster on large traces, with
	// near-identical (not bit-identical) grouping. Off by default.
	BinSeeding bool
	// Scratch, when non-nil, supplies reusable clustering buffers so
	// repeated Detect calls stay allocation-free in the hot path. Results
	// are identical with or without it. Not safe for concurrent use.
	Scratch *cluster.Scratch
}

// DefaultDetectConfig returns the detection defaults for a job of the
// given runtime.
func DefaultDetectConfig(runtime float64) DetectConfig {
	return DetectConfig{
		Bandwidth:    0.05,
		Kernel:       cluster.FlatKernel,
		MinGroupSize: 2,
		Features:     FeatureConfig{Runtime: runtime, VolumeLogScale: DefaultVolumeLogScale},
		MinCoverage:  0.5,
	}
}

// BusyHighThreshold splits periodic_low_busy_time from
// periodic_high_busy_time: the paper observes that almost all periodic
// writers spend less than 25% of the time writing. Exported so the
// explain subsystem can state the threshold it compared against.
const BusyHighThreshold = 0.25

// Detect clusters the segments and returns every periodic group found, or
// nil when the trace has no periodic behaviour. Multiple groups model
// applications with several interleaved periodic operations (e.g.
// checkpointing and regular input reading).
func Detect(segs []Segment, cfg DetectConfig) ([]Group, error) {
	if cfg.MinGroupSize < 2 {
		cfg.MinGroupSize = 2
	}
	if cfg.MinCoverage <= 0 {
		cfg.MinCoverage = 0.5
	}
	if cfg.Trace != nil {
		cfg.Trace.Segments = len(segs)
	}
	if len(segs) < cfg.MinGroupSize {
		return nil, nil
	}
	var pts []cluster.Point
	if cfg.Scratch != nil {
		pts = cfg.Scratch.Points(len(segs), 2)
		fillFeatures(pts, segs, cfg.Features)
	} else {
		pts = Features(segs, cfg.Features)
	}
	res, err := cluster.MeanShift(pts, cluster.MeanShiftConfig{
		Bandwidth:  cfg.Bandwidth,
		Kernel:     cfg.Kernel,
		BinSeeding: cfg.BinSeeding,
		Scratch:    cfg.Scratch,
	})
	if err != nil {
		return nil, err
	}
	byCluster := make(map[int][]int)
	for i, l := range res.Labels {
		byCluster[l] = append(byCluster[l], i)
	}
	runtime := cfg.Features.Runtime
	var groups []Group
	for l := 0; l < len(res.Centers); l++ {
		members := byCluster[l]
		var coverage float64
		if runtime > 0 {
			coverage = spanOf(segs, members) / runtime
		}
		accepted, reason := true, ClusterAccepted
		switch {
		case len(members) < cfg.MinGroupSize:
			accepted, reason = false, ClusterRejectedSize
		case runtime > 0 && coverage < cfg.MinCoverage:
			accepted, reason = false, ClusterRejectedCoverage
		}
		var g Group
		if accepted || cfg.Trace != nil {
			g = buildGroup(segs, members)
		}
		if cfg.Trace != nil {
			cfg.Trace.Clusters = append(cfg.Trace.Clusters,
				traceCluster(res.Centers[l], pts, members, g, coverage, accepted, reason))
		}
		if accepted {
			groups = append(groups, g)
		}
	}
	return groups, nil
}

// traceCluster assembles the provenance record of one cluster.
func traceCluster(center cluster.Point, pts []cluster.Point, members []int, g Group, coverage float64, accepted bool, reason string) ClusterTrace {
	ct := ClusterTrace{
		Size:      len(members),
		Period:    g.Period,
		MeanBytes: g.MeanBytes,
		Coverage:  coverage,
		Accepted:  accepted,
		Reason:    reason,
	}
	if len(center) == 2 {
		ct.CentroidDuration, ct.CentroidVolume = center[0], center[1]
	}
	if n := float64(len(members)); n > 0 {
		var mean0, mean1 float64
		for _, i := range members {
			mean0 += pts[i][0]
			mean1 += pts[i][1]
		}
		mean0 /= n
		mean1 /= n
		var var0, var1 float64
		for _, i := range members {
			d0, d1 := pts[i][0]-mean0, pts[i][1]-mean1
			var0 += d0 * d0
			var1 += d1 * d1
		}
		ct.SpreadDuration = math.Sqrt(var0 / n)
		ct.SpreadVolume = math.Sqrt(var1 / n)
	}
	return ct
}

func buildGroup(segs []Segment, members []int) Group {
	var sumDur, sumBytes, sumBusy float64
	for _, i := range members {
		s := segs[i]
		sumDur += s.Duration
		sumBytes += float64(s.Op.Bytes)
		if s.Duration > 0 {
			sumBusy += s.Op.Duration() / s.Duration
		}
	}
	n := float64(len(members))
	period := sumDur / n
	return Group{
		Count:     len(members),
		Period:    period,
		Magnitude: category.MagnitudeOf(period),
		MeanBytes: sumBytes / n,
		BusyRatio: sumBusy / n,
		Segments:  append([]int(nil), members...),
	}
}

// spanOf returns the time covered from the first to the last member
// segment (including the last member's duration).
func spanOf(segs []Segment, members []int) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, i := range members {
		s := segs[i]
		if s.Op.Start < lo {
			lo = s.Op.Start
		}
		if end := s.Op.Start + s.Duration; end > hi {
			hi = end
		}
	}
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// BusyHigh reports whether a group's busy ratio crosses the
// low/high-busy-time boundary.
func (g Group) BusyHigh() bool { return g.BusyRatio >= BusyHighThreshold }

// Categories returns the periodicity categories implied by the groups for
// the given direction: the base periodic label, one magnitude label per
// distinct magnitude, and a busy-time label per group.
func Categories(dir category.Direction, groups []Group) category.Set {
	s := category.NewSet()
	if len(groups) == 0 {
		return s
	}
	s.Add(category.Periodic(dir))
	for _, g := range groups {
		if g.Magnitude != category.MagNone {
			s.Add(category.PeriodicMagnitude(dir, g.Magnitude))
		}
		s.Add(category.PeriodicBusy(dir, g.BusyHigh()))
	}
	return s
}
