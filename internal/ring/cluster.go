package ring

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/mosaic-hpc/mosaic/internal/events"
	"github.com/mosaic-hpc/mosaic/internal/reqtrace"
	"github.com/mosaic-hpc/mosaic/internal/telemetry"
)

// Config configures one cluster node.
type Config struct {
	// Self is this node's ID; it must appear in Nodes.
	Self string
	// Nodes is the full static membership, identical on every node.
	Nodes []Node
	// VirtualNodes is the ring points per member (<= 0: default).
	VirtualNodes int
	// Replication is the total copies of each trace, owner included
	// (<= 0: default 2; capped at the member count).
	Replication int
	// ReplicaAck is how many follower copies must be durable before an
	// ingest is acknowledged, in addition to the owner's own fsync.
	// 0 acks after the owner alone (fully asynchronous replication —
	// an owner dying before replication loses its unreplicated acks);
	// the default 1 keeps every ack crash-safe against any single node
	// loss. Capped at Replication-1. Negative selects the default.
	ReplicaAck int
	// ProbeInterval paces the per-peer health probes (<= 0: 1s).
	ProbeInterval time.Duration
	// RPCTimeout bounds one inter-node call (<= 0: 10s).
	RPCTimeout time.Duration
	// HedgeAfter is how long a routed read waits on the preferred
	// replica before hedging to the next one (<= 0: 100ms).
	HedgeAfter time.Duration
	// HintRetry paces hinted-handoff replay attempts (<= 0: 2s).
	HintRetry time.Duration
	// RepairAfter is how long a replica waits for the owner's result
	// push before categorizing a replicated trace itself (<= 0: 5s).
	// The serve tier's repair loop reads it; the cluster only carries it.
	RepairAfter time.Duration
	// Log receives cluster lifecycle events (nil: silent).
	Log *slog.Logger
	// Registry hosts the mosaic_ring_* metrics (nil: private registry).
	Registry *telemetry.Registry
	// Flight, when non-nil, records inbound RPC traces (cross-node span
	// trees) into this flight recorder.
	Flight *reqtrace.Recorder
	// Events, when non-nil, receives cluster health events (peer
	// up/down, hinted-handoff activity, routing-version mismatches).
	Events *events.Log
}

func (c Config) withDefaults() Config {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.RPCTimeout <= 0 {
		c.RPCTimeout = 10 * time.Second
	}
	if c.HedgeAfter <= 0 {
		c.HedgeAfter = 100 * time.Millisecond
	}
	if c.HintRetry <= 0 {
		c.HintRetry = 2 * time.Second
	}
	if c.RepairAfter <= 0 {
		c.RepairAfter = 5 * time.Second
	}
	return c
}

// ItemStatus is the per-trace outcome of a forwarded ingest, mirroring
// the serve tier's IngestItem without importing it (ring sits below
// serve).
type ItemStatus struct {
	Name   string `json:"name,omitempty"`
	ID     string `json:"id,omitempty"`
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
}

// NodeStats is one node's contribution to scatter-gathered /v1/stats.
type NodeStats struct {
	Node       string `json:"node"`
	Up         bool   `json:"up"`
	Indexed    int    `json:"indexed_traces"`
	QueueDepth int    `json:"queue_depth"`
	Pending    int    `json:"pending"`
	Traces     int64  `json:"store_traces"`
	Results    int64  `json:"store_results"`
}

// Backend is the node-local service the cluster dispatches inbound
// RPCs to — implemented by the serve tier. Blob slices passed in alias
// the connection read buffer; implementations must copy what they keep.
type Backend interface {
	// HandleIngest ingests traces this node owns (forwarded by a peer):
	// persist durably, queue categorization, replicate onward. One
	// status per blob, in order. ids[i] is blobs[i]'s content address,
	// computed by the forwarding node from the canonical encoding it
	// ships — receivers persist under it without re-hashing.
	HandleIngest(ctx context.Context, reqID string, ids []string, blobs [][]byte) []ItemStatus
	// HandleReplicate persists follower copies durably without
	// categorizing them (the owner pushes results separately). IDs
	// pair with blobs as in HandleIngest.
	HandleReplicate(ctx context.Context, reqID string, ids []string, blobs [][]byte) error
	// HandleResultPush stores a result computed by the trace's owner.
	HandleResultPush(ctx context.Context, id, fp string, result []byte) error
	// HandleQuery answers a boolean category query over the local index.
	HandleQuery(ctx context.Context, q string) ([]string, error)
	// HandleStats reports local statistics.
	HandleStats(ctx context.Context) NodeStats
	// HandleResult returns the locally stored result JSON of one trace.
	HandleResult(ctx context.Context, id string) ([]byte, bool, error)
	// FetchTrace returns the locally stored blob of one trace — the
	// hinted-handoff replay source.
	FetchTrace(id string) ([]byte, bool, error)
	// HandleStatus reports the node's self-assessed health and vitals —
	// the per-node entry of the fleet health document.
	HandleStatus(ctx context.Context) StatusSnapshot
	// HandleMetrics returns the node's full metrics export as
	// JSON-encoded telemetry family snapshots, for federation.
	HandleMetrics(ctx context.Context) ([]byte, error)
}

// peer is one remote member plus its health state. The backoff fields
// are owned by the probe goroutine; up is the shared flag request
// paths read and transport failures clear.
type peer struct {
	node   Node
	client *Client
	up     atomic.Bool

	failStreak int       // probe-goroutine only
	nextProbe  time.Time // probe-goroutine only
}

// Cluster is one node's view of the ring: the routing table, a client
// per peer, the inbound RPC server, health probes, and the
// hinted-handoff backlog.
type Cluster struct {
	cfg     Config
	table   *Table
	self    Node
	backend Backend
	srv     *Server
	peers   map[string]*peer // keyed by node ID; excludes self
	order   []string         // peer IDs in ring (ID) order
	met     *telemetry.RingMetrics
	log     *slog.Logger
	events  *events.Log // nil: no journal

	hintMu sync.Mutex
	hints  map[string]map[string]struct{} // peer ID -> trace IDs owed

	quit     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// maxHintsPerPeer caps the hinted-handoff backlog owed to one peer;
// hints past it are dropped (and counted) — the replica repair loop
// and restart-time backfill remain the backstop.
const maxHintsPerPeer = 8192

// NewCluster builds the node's cluster runtime and starts its health
// probe and hint replay loops. Serve must still be called with the RPC
// listener; Shutdown (or Kill) stops everything.
func NewCluster(cfg Config, backend Backend) (*Cluster, error) {
	cfg = cfg.withDefaults()
	table, err := NewTable(cfg.Nodes, cfg.VirtualNodes, cfg.Replication)
	if err != nil {
		return nil, err
	}
	self, ok := table.NodeByID(cfg.Self)
	if !ok {
		return nil, fmt.Errorf("ring: self %q not in membership", cfg.Self)
	}
	if cfg.ReplicaAck < 0 || cfg.ReplicaAck > table.RF()-1 {
		cfg.ReplicaAck = min(1, table.RF()-1)
	}
	reg := cfg.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	c := &Cluster{
		cfg:     cfg,
		table:   table,
		self:    self,
		backend: backend,
		peers:   make(map[string]*peer),
		met:     telemetry.NewRingMetrics(reg),
		log:     cfg.Log,
		events:  cfg.Events,
		hints:   make(map[string]map[string]struct{}),
		quit:    make(chan struct{}),
	}
	for _, n := range table.Nodes() {
		if n.ID == self.ID {
			continue
		}
		p := &peer{node: n, client: NewClient(n.Addr, cfg.RPCTimeout)}
		p.up.Store(true) // optimistic: the first probe or call corrects
		c.peers[n.ID] = p
		c.order = append(c.order, n.ID)
	}
	c.met.PeersUp.Set(float64(len(c.peers)))
	hello, _ := json.Marshal(pingInfo{Node: self.ID, Version: table.Version()})
	c.srv = NewServer(ServerOptions{Log: cfg.Log, Flight: cfg.Flight, Hello: hello})
	c.registerHandlers()
	c.wg.Add(2)
	go c.probeLoop()
	go c.hintLoop()
	return c, nil
}

// pingInfo is the OpPing response body.
type pingInfo struct {
	Node    string `json:"node"`
	Version uint64 `json:"version"`
}

// Table returns the routing table.
func (c *Cluster) Table() *Table { return c.table }

// Self returns this node's membership entry.
func (c *Cluster) Self() Node { return c.self }

// ReplicaAck returns the effective follower-ack requirement.
func (c *Cluster) ReplicaAck() int { return c.cfg.ReplicaAck }

// Metrics returns the ring instrument bundle, shared with the serve
// tier (which owns the degraded-ack accounting).
func (c *Cluster) Metrics() *telemetry.RingMetrics { return c.met }

// RepairAfter returns the replica self-repair deadline.
func (c *Cluster) RepairAfter() time.Duration { return c.cfg.RepairAfter }

// Healthy reports whether a node is believed reachable (self: true).
func (c *Cluster) Healthy(id string) bool {
	if id == c.self.ID {
		return true
	}
	p, ok := c.peers[id]
	return ok && p.up.Load()
}

// Serve accepts inbound cluster RPCs on l. It blocks; a clean
// shutdown returns nil.
func (c *Cluster) Serve(l net.Listener) error { return c.srv.Serve(l) }

// Shutdown stops the background loops and drains the RPC server.
func (c *Cluster) Shutdown(ctx context.Context) error {
	c.stopOnce.Do(func() { close(c.quit) })
	c.wg.Wait()
	err := c.srv.Shutdown(ctx)
	for _, p := range c.peers {
		p.client.Close()
	}
	return err
}

// Kill crashes the node's cluster presence: listener and every
// connection — inbound and outbound — closed immediately, background
// loops stopped, nothing drained. Failure tests use it as the
// in-process stand-in for SIGKILL; after Kill the node can neither
// serve nor originate any RPC.
func (c *Cluster) Kill() {
	c.stopOnce.Do(func() { close(c.quit) })
	c.srv.Kill()
	for _, p := range c.peers {
		p.client.Close()
	}
	c.wg.Wait()
}

// ---- outbound calls ----

// callPeer performs one RPC to a peer, with metrics and health
// tracking: a transport failure marks the peer down (the probe loop
// brings it back); an application-level RemoteError or ErrNotFound
// does not.
func (c *Cluster) callPeer(ctx context.Context, p *peer, op byte, opName, reqID string, body []byte) ([]byte, error) {
	start := time.Now()
	resp, err := p.client.Call(ctx, op, opName, reqID, body)
	c.met.RPCSeconds.Observe(time.Since(start).Seconds())
	if err != nil {
		if !errors.Is(err, ErrNotFound) {
			c.met.RPCErrors.Inc()
		}
		var re *RemoteError
		if !errors.As(err, &re) && !errors.Is(err, ErrNotFound) {
			c.markDown(p, err)
		}
	}
	return resp, err
}

func (c *Cluster) peerByID(id string) (*peer, error) {
	p, ok := c.peers[id]
	if !ok {
		return nil, fmt.Errorf("ring: unknown peer %q", id)
	}
	return p, nil
}

func (c *Cluster) markDown(p *peer, err error) {
	if p.up.Swap(false) {
		c.updatePeersUp()
		if c.log != nil {
			c.log.Warn("ring: peer down", "peer", p.node.ID, "addr", p.node.Addr, "err", err)
		}
		if c.events != nil {
			c.events.Emit(events.SevWarn, events.TypeNodeDown, "peer unreachable",
				"peer", p.node.ID, "addr", p.node.Addr, "err", err.Error())
		}
	}
}

func (c *Cluster) markUp(p *peer) {
	if !p.up.Swap(true) {
		c.updatePeersUp()
		if c.log != nil {
			c.log.Info("ring: peer up", "peer", p.node.ID, "addr", p.node.Addr)
		}
		if c.events != nil {
			c.events.Emit(events.SevInfo, events.TypeNodeUp, "peer reachable again",
				"peer", p.node.ID, "addr", p.node.Addr)
		}
	}
}

func (c *Cluster) updatePeersUp() {
	n := 0
	for _, p := range c.peers {
		if p.up.Load() {
			n++
		}
	}
	c.met.PeersUp.Set(float64(n))
}

// ForwardIngest routes a group of trace blobs — each paired with its
// content address — to their owner node and returns the owner's
// per-item statuses, in blob order.
func (c *Cluster) ForwardIngest(ctx context.Context, reqID, peerID string, ids []string, blobs [][]byte) ([]ItemStatus, error) {
	p, err := c.peerByID(peerID)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(ctx, c.cfg.RPCTimeout)
	defer cancel()
	bp := bodyPool.Get().(*[]byte)
	defer bodyPool.Put(bp)
	body, err := appendPairs((*bp)[:0], ids, blobs)
	if err != nil {
		return nil, err
	}
	*bp = body[:0]
	resp, err := c.callPeer(ctx, p, OpIngest, "ingest", reqID, body)
	if err != nil {
		return nil, err
	}
	var out struct {
		Items []ItemStatus `json:"items"`
	}
	if err := json.Unmarshal(resp, &out); err != nil {
		return nil, fmt.Errorf("ring: decoding ingest reply from %s: %w", peerID, err)
	}
	if len(out.Items) != len(blobs) {
		return nil, fmt.Errorf("ring: peer %s answered %d statuses for %d blobs", peerID, len(out.Items), len(blobs))
	}
	c.met.ForwardedTraces.Add(int64(len(blobs)))
	return out.Items, nil
}

// Replicate ships follower copies of the given blobs to one peer,
// synchronously. On failure the trace IDs are recorded as hints for
// later replay and the error returned (callers decide whether the
// failure degrades an ack or was best-effort anyway).
func (c *Cluster) Replicate(ctx context.Context, reqID, peerID string, ids []string, blobs [][]byte) error {
	p, err := c.peerByID(peerID)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(ctx, c.cfg.RPCTimeout)
	defer cancel()
	bp := bodyPool.Get().(*[]byte)
	defer bodyPool.Put(bp)
	body, err := appendPairs((*bp)[:0], ids, blobs)
	if err != nil {
		return err
	}
	*bp = body[:0]
	if _, err := c.callPeer(ctx, p, OpReplicate, "replicate", reqID, body); err != nil {
		c.Hint(peerID, ids)
		return err
	}
	c.met.ReplicatedTraces.Add(int64(len(blobs)))
	return nil
}

// bodyPool recycles the request-body scratch of the bulk-data RPCs
// (ForwardIngest, Replicate): batch bodies run to a megabyte and are
// garbage the moment the synchronous call returns.
var bodyPool = sync.Pool{New: func() any { return new([]byte) }}

// appendPairs encodes parallel id/blob slices as an alternating blob
// list — the OpIngest and OpReplicate body format. Shipping the
// content address next to each blob lets every downstream node (owner,
// followers) persist without re-hashing; only the entry node pays the
// SHA-256 pass.
func appendPairs(body []byte, ids []string, blobs [][]byte) ([]byte, error) {
	if len(ids) != len(blobs) {
		return nil, fmt.Errorf("ring: %d ids for %d blobs", len(ids), len(blobs))
	}
	total := len(body)
	for i, b := range blobs {
		total += 8 + len(ids[i]) + len(b)
	}
	if cap(body) < total {
		grown := make([]byte, len(body), total)
		copy(grown, body)
		body = grown
	}
	for i, b := range blobs {
		body = AppendBlob(body, []byte(ids[i]))
		body = AppendBlob(body, b)
	}
	return body, nil
}

// splitPairs decodes an alternating id/blob body built by appendPairs.
// The blob slices alias body; the ids are copied out.
func splitPairs(body []byte) ([]string, [][]byte, error) {
	parts, err := SplitBlobs(body)
	if err != nil {
		return nil, nil, err
	}
	if len(parts)%2 != 0 {
		return nil, nil, fmt.Errorf("ring: odd id/blob element count %d", len(parts))
	}
	ids := make([]string, len(parts)/2)
	blobs := make([][]byte, len(parts)/2)
	for i := range ids {
		ids[i] = string(parts[2*i])
		blobs[i] = parts[2*i+1]
	}
	return ids, blobs, nil
}

// Hint records trace IDs owed to a peer for hinted-handoff replay.
func (c *Cluster) Hint(peerID string, ids []string) {
	c.hintMu.Lock()
	set := c.hints[peerID]
	if set == nil {
		set = make(map[string]struct{})
		c.hints[peerID] = set
	}
	queued, dropped := 0, 0
	for _, id := range ids {
		if _, ok := set[id]; ok {
			continue
		}
		if len(set) >= maxHintsPerPeer {
			dropped++
			continue
		}
		set[id] = struct{}{}
		queued++
	}
	total := 0
	for _, s := range c.hints {
		total += len(s)
	}
	c.hintMu.Unlock()
	c.met.HintsQueued.Add(int64(queued))
	c.met.HintsDropped.Add(int64(dropped))
	c.met.HintsPending.Set(float64(total))
	if queued > 0 && c.events != nil {
		c.events.Emit(events.SevWarn, events.TypeHintQueued, "replication owed to peer queued as hints",
			"peer", peerID, "queued", strconv.Itoa(queued), "pending", strconv.Itoa(total))
	}
	if dropped > 0 {
		if c.log != nil {
			c.log.Warn("ring: hint backlog full, dropping", "peer", peerID, "dropped", dropped)
		}
		if c.events != nil {
			c.events.Emit(events.SevError, events.TypeHintDropped, "hint backlog full, replication debt dropped",
				"peer", peerID, "dropped", strconv.Itoa(dropped))
		}
	}
}

// takeHints pops up to n hinted trace IDs owed to a peer.
func (c *Cluster) takeHints(peerID string, n int) []string {
	c.hintMu.Lock()
	defer c.hintMu.Unlock()
	set := c.hints[peerID]
	if len(set) == 0 {
		return nil
	}
	out := make([]string, 0, min(n, len(set)))
	for id := range set {
		if len(out) >= n {
			break
		}
		out = append(out, id)
		delete(set, id)
	}
	return out
}

// PushResult ships an owner-computed categorization result to the
// trace's other replicas, asynchronously and best-effort: a replica
// that misses the push repairs itself after RepairAfter.
func (c *Cluster) PushResult(reqID, id, fp string, result []byte, peerIDs []string) {
	body, err := json.Marshal(resultPush{ID: id, Fingerprint: fp, Result: result})
	if err != nil {
		return
	}
	for _, pid := range peerIDs {
		p, perr := c.peerByID(pid)
		if perr != nil || !p.up.Load() {
			continue
		}
		// Not tracked by c.wg: pushes are best-effort and time-bounded,
		// and adding to the group concurrently with a shutdown Wait
		// would race.
		go func(p *peer) {
			ctx, cancel := context.WithTimeout(context.Background(), c.cfg.RPCTimeout)
			defer cancel()
			if _, err := c.callPeer(ctx, p, OpResultPush, "resultpush", reqID, body); err != nil {
				if c.log != nil {
					c.log.Debug("ring: result push failed (replica will self-repair)",
						"peer", p.node.ID, "id", id, "err", err)
				}
				return
			}
			c.met.ResultPushes.Inc()
		}(p)
	}
}

// resultPush is the OpResultPush body.
type resultPush struct {
	ID          string          `json:"id"`
	Fingerprint string          `json:"fp"`
	Result      json.RawMessage `json:"result"`
}

// ScatterQuery fans a boolean query out to every live peer and returns
// one match list per answering peer, each already sorted by the
// shard's index (duplicates across replicas land in different lists —
// the caller runs the K-way merge), plus any per-peer failures. Down
// peers are skipped and reported in errs; with replication >= 2 their
// shard remains covered by the surviving replicas.
func (c *Cluster) ScatterQuery(ctx context.Context, reqID, q string) (lists [][]string, errs map[string]error) {
	body, _ := json.Marshal(struct {
		Q string `json:"q"`
	}{Q: q})
	type reply struct {
		peerID string
		ids    []string
		err    error
	}
	ch := make(chan reply, len(c.order))
	n := 0
	for _, pid := range c.order {
		p := c.peers[pid]
		if !p.up.Load() {
			if errs == nil {
				errs = make(map[string]error)
			}
			errs[pid] = errors.New("peer down")
			continue
		}
		n++
		go func(pid string, p *peer) {
			cctx, cancel := context.WithTimeout(ctx, c.cfg.RPCTimeout)
			defer cancel()
			resp, err := c.callPeer(cctx, p, OpQuery, "query", reqID, body)
			if err != nil {
				ch <- reply{peerID: pid, err: err}
				return
			}
			var out struct {
				IDs []string `json:"ids"`
			}
			if err := json.Unmarshal(resp, &out); err != nil {
				ch <- reply{peerID: pid, err: err}
				return
			}
			ch <- reply{peerID: pid, ids: out.IDs}
		}(pid, p)
	}
	for i := 0; i < n; i++ {
		r := <-ch
		if r.err != nil {
			if errs == nil {
				errs = make(map[string]error)
			}
			errs[r.peerID] = r.err
			continue
		}
		if len(r.ids) > 0 {
			lists = append(lists, r.ids)
		}
	}
	return lists, errs
}

// ScatterStats collects every peer's NodeStats (down or failed peers
// appear with Up=false), in ring order.
func (c *Cluster) ScatterStats(ctx context.Context, reqID string) []NodeStats {
	out := make([]NodeStats, len(c.order))
	var wg sync.WaitGroup
	for i, pid := range c.order {
		p := c.peers[pid]
		out[i] = NodeStats{Node: pid}
		if !p.up.Load() {
			continue
		}
		wg.Add(1)
		go func(i int, p *peer) {
			defer wg.Done()
			cctx, cancel := context.WithTimeout(ctx, c.cfg.RPCTimeout)
			defer cancel()
			resp, err := c.callPeer(cctx, p, OpStats, "stats", reqID, nil)
			if err != nil {
				return
			}
			var ns NodeStats
			if json.Unmarshal(resp, &ns) == nil {
				ns.Up = true
				out[i] = ns
			}
		}(i, p)
	}
	wg.Wait()
	return out
}

// FetchResult reads one trace's stored result from its replica set
// with hedging: the preferred (first live) replica is asked first; if
// it has not answered within HedgeAfter, the next replica is asked in
// parallel, and the first definite answer wins. A unanimous miss
// returns (nil, false, nil).
func (c *Cluster) FetchResult(ctx context.Context, reqID, id string) ([]byte, bool, error) {
	var cands []*peer
	for _, n := range c.table.Replicas(id) {
		if n.ID == c.self.ID {
			continue
		}
		if p, ok := c.peers[n.ID]; ok && p.up.Load() {
			cands = append(cands, p)
		}
	}
	if len(cands) == 0 {
		return nil, false, nil
	}
	type reply struct {
		data []byte
		ok   bool
		err  error
	}
	ch := make(chan reply, len(cands))
	ctx, cancel := context.WithTimeout(ctx, c.cfg.RPCTimeout)
	defer cancel()
	ask := func(p *peer) {
		resp, err := c.callPeer(ctx, p, OpResult, "result", reqID, []byte(id))
		switch {
		case err == nil:
			ch <- reply{data: resp, ok: true}
		case errors.Is(err, ErrNotFound):
			ch <- reply{}
		default:
			ch <- reply{err: err}
		}
	}
	launched := 1
	go ask(cands[0])
	hedge := time.NewTimer(c.cfg.HedgeAfter)
	defer hedge.Stop()
	var lastErr error
	for done := 0; done < launched; {
		select {
		case r := <-ch:
			done++
			if r.ok {
				return r.data, true, nil
			}
			if r.err != nil {
				lastErr = r.err
			}
			// A definite miss or error: ask the next replica right away.
			if launched < len(cands) {
				go ask(cands[launched])
				launched++
			}
		case <-hedge.C:
			if launched < len(cands) {
				c.met.HedgedRequests.Inc()
				go ask(cands[launched])
				launched++
			}
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	return nil, false, lastErr
}

// ---- inbound handlers ----

func (c *Cluster) registerHandlers() {
	c.srv.Handle(OpIngest, "ingest", func(ctx context.Context, f *Frame) ([]byte, error) {
		ids, blobs, err := splitPairs(f.Body)
		if err != nil {
			return nil, err
		}
		items := c.backend.HandleIngest(ctx, f.RequestID, ids, blobs)
		return json.Marshal(struct {
			Items []ItemStatus `json:"items"`
		}{Items: items})
	})
	c.srv.Handle(OpReplicate, "replicate", func(ctx context.Context, f *Frame) ([]byte, error) {
		ids, blobs, err := splitPairs(f.Body)
		if err != nil {
			return nil, err
		}
		return nil, c.backend.HandleReplicate(ctx, f.RequestID, ids, blobs)
	})
	c.srv.Handle(OpResultPush, "resultpush", func(ctx context.Context, f *Frame) ([]byte, error) {
		var push resultPush
		if err := json.Unmarshal(f.Body, &push); err != nil {
			return nil, err
		}
		return nil, c.backend.HandleResultPush(ctx, push.ID, push.Fingerprint, push.Result)
	})
	c.srv.Handle(OpQuery, "query", func(ctx context.Context, f *Frame) ([]byte, error) {
		var req struct {
			Q string `json:"q"`
		}
		if err := json.Unmarshal(f.Body, &req); err != nil {
			return nil, err
		}
		ids, err := c.backend.HandleQuery(ctx, req.Q)
		if err != nil {
			return nil, err
		}
		return json.Marshal(struct {
			IDs []string `json:"ids"`
		}{IDs: ids})
	})
	c.srv.Handle(OpStats, "stats", func(ctx context.Context, f *Frame) ([]byte, error) {
		return json.Marshal(c.backend.HandleStats(ctx))
	})
	c.srv.Handle(OpResult, "result", func(ctx context.Context, f *Frame) ([]byte, error) {
		data, ok, err := c.backend.HandleResult(ctx, string(f.Body))
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, ErrNotFound
		}
		return data, nil
	})
	c.srv.Handle(OpTable, "table", func(ctx context.Context, f *Frame) ([]byte, error) {
		return json.Marshal(c.Info())
	})
	c.srv.Handle(OpStatus, "status", func(ctx context.Context, f *Frame) ([]byte, error) {
		return json.Marshal(c.backend.HandleStatus(ctx))
	})
	c.srv.Handle(OpMetricsSnap, "metrics", func(ctx context.Context, f *Frame) ([]byte, error) {
		return c.backend.HandleMetrics(ctx)
	})
}

// ---- background loops ----

// probeLoop pings every peer on ProbeInterval, with exponential
// backoff (capped at 16× the interval) on consecutively failing peers
// so a long outage is not hammered. A probe answered with a different
// routing-table version is a configuration error worth surfacing: the
// nodes would route the same key differently.
func (c *Cluster) probeLoop() {
	defer c.wg.Done()
	tick := time.NewTicker(c.cfg.ProbeInterval)
	defer tick.Stop()
	for {
		select {
		case <-c.quit:
			return
		case <-tick.C:
		}
		now := time.Now()
		for _, pid := range c.order {
			p := c.peers[pid]
			if now.Before(p.nextProbe) {
				continue
			}
			ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ProbeInterval)
			resp, err := p.client.Call(ctx, OpPing, "ping", "probe", nil)
			cancel()
			if err != nil {
				c.met.ProbeFailures.Inc()
				c.markDown(p, err)
				p.failStreak++
				backoff := c.cfg.ProbeInterval << min(p.failStreak, 4)
				p.nextProbe = now.Add(backoff)
				continue
			}
			p.failStreak = 0
			p.nextProbe = time.Time{}
			var info pingInfo
			if json.Unmarshal(resp, &info) == nil && info.Version != 0 && info.Version != c.table.Version() {
				c.met.VersionMismatches.Inc()
				if c.log != nil {
					c.log.Error("ring: routing-table version mismatch",
						"peer", pid, "peer_version", info.Version, "local_version", c.table.Version())
				}
				if c.events != nil {
					c.events.Emit(events.SevError, events.TypeVersionMismatch, "routing-table version mismatch",
						"peer", pid,
						"peer_version", strconv.FormatUint(info.Version, 16),
						"local_version", strconv.FormatUint(c.table.Version(), 16))
				}
			}
			c.markUp(p)
		}
	}
}

// hintLoop replays hinted handoffs: once a peer that was owed
// replications is back up, its hinted traces are re-read from the
// local store and shipped in batches until the backlog drains.
func (c *Cluster) hintLoop() {
	defer c.wg.Done()
	tick := time.NewTicker(c.cfg.HintRetry)
	defer tick.Stop()
	for {
		select {
		case <-c.quit:
			return
		case <-tick.C:
		}
		for _, pid := range c.order {
			p := c.peers[pid]
			if !p.up.Load() {
				continue
			}
			for {
				ids := c.takeHints(pid, 64)
				if len(ids) == 0 {
					break
				}
				var (
					blobs [][]byte
					kept  []string
				)
				for _, id := range ids {
					blob, ok, err := c.backend.FetchTrace(id)
					if err != nil || !ok {
						continue // superseded or unreadable: nothing to replay
					}
					blobs = append(blobs, blob)
					kept = append(kept, id)
				}
				if len(blobs) == 0 {
					continue
				}
				if err := c.Replicate(context.Background(), "hint-replay", pid, kept, blobs); err != nil {
					// Replicate re-hinted the IDs; stop until the next tick.
					break
				}
				c.met.HintsReplayed.Add(int64(len(blobs)))
				c.updateHintsPending()
				if c.events != nil {
					c.events.Emit(events.SevInfo, events.TypeHintReplayed, "hinted handoff replayed to recovered peer",
						"peer", pid, "count", strconv.Itoa(len(blobs)))
				}
			}
		}
	}
}

func (c *Cluster) updateHintsPending() {
	c.hintMu.Lock()
	total := 0
	for _, s := range c.hints {
		total += len(s)
	}
	c.hintMu.Unlock()
	c.met.HintsPending.Set(float64(total))
}

// ---- cluster introspection ----

// NodeInfo is one member in the /v1/cluster document.
type NodeInfo struct {
	ID       string `json:"id"`
	Addr     string `json:"addr"`
	HTTPAddr string `json:"http_addr,omitempty"`
	Self     bool   `json:"self,omitempty"`
	Up       bool   `json:"up"`
}

// Info is the versioned routing-table document served from
// GET /v1/cluster.
type Info struct {
	Self         string     `json:"self"`
	Version      string     `json:"version"` // hex of the membership hash
	VirtualNodes int        `json:"virtual_nodes"`
	Replication  int        `json:"replication"`
	ReplicaAck   int        `json:"replica_ack"`
	Nodes        []NodeInfo `json:"nodes"`
}

// Info returns the routing-table document.
func (c *Cluster) Info() Info {
	info := Info{
		Self:         c.self.ID,
		Version:      strconv.FormatUint(c.table.Version(), 16),
		VirtualNodes: c.table.VirtualNodes(),
		Replication:  c.table.RF(),
		ReplicaAck:   c.cfg.ReplicaAck,
	}
	for _, n := range c.table.Nodes() {
		ni := NodeInfo{ID: n.ID, Addr: n.Addr, HTTPAddr: n.HTTPAddr}
		if n.ID == c.self.ID {
			ni.Self, ni.Up = true, true
		} else {
			ni.Up = c.peers[n.ID].up.Load()
		}
		info.Nodes = append(info.Nodes, ni)
	}
	sort.Slice(info.Nodes, func(i, j int) bool { return info.Nodes[i].ID < info.Nodes[j].ID })
	return info
}
