package cluster

import (
	"math"
	"math/rand"
	"runtime"
	"sort"
	"testing"
)

// blobs generates k well-separated Gaussian blobs plus a fraction of
// uniform noise in [0,1]^2 — the synthetic workload of the differential
// and determinism tests.
func noisyBlobs(rng *rand.Rand, n, k int, spread, noiseFrac float64) []Point {
	centers := make([]Point, k)
	for i := range centers {
		centers[i] = Point{rng.Float64(), rng.Float64()}
	}
	pts := make([]Point, n)
	for i := range pts {
		if rng.Float64() < noiseFrac {
			pts[i] = Point{rng.Float64(), rng.Float64()}
			continue
		}
		c := centers[rng.Intn(k)]
		pts[i] = Point{
			c[0] + rng.NormFloat64()*spread,
			c[1] + rng.NormFloat64()*spread,
		}
	}
	return pts
}

func mustShift(t *testing.T, pts []Point, cfg MeanShiftConfig) *Result {
	t.Helper()
	res, err := MeanShift(pts, cfg)
	if err != nil {
		t.Fatalf("MeanShift(%+v): %v", cfg, err)
	}
	return res
}

// TestAcceleratedFlatMatchesExact: the grid-accelerated path with the flat
// kernel must produce label-identical results to the exact O(n²) path —
// the flat kernel neighborhood (radius h) is fully covered by the radius-1
// cell probe, so only the accumulation order differs.
func TestAcceleratedFlatMatchesExact(t *testing.T) {
	for _, n := range []int{64, 200, 1000} {
		for seed := int64(0); seed < 3; seed++ {
			rng := rand.New(rand.NewSource(seed*100 + int64(n)))
			pts := noisyBlobs(rng, n, 4, 0.02, 0.2)
			exact := mustShift(t, pts, MeanShiftConfig{Bandwidth: 0.08, Exact: true})
			var st MeanShiftStats
			accel := mustShift(t, pts, MeanShiftConfig{Bandwidth: 0.08, Stats: &st})
			if !st.Accelerated {
				t.Fatalf("n=%d: accelerated path not taken", n)
			}
			if len(exact.Centers) != len(accel.Centers) {
				t.Fatalf("n=%d seed=%d: center counts differ: exact %d, accel %d",
					n, seed, len(exact.Centers), len(accel.Centers))
			}
			for i := range exact.Labels {
				if exact.Labels[i] != accel.Labels[i] {
					t.Fatalf("n=%d seed=%d: label %d differs: exact %d, accel %d",
						n, seed, i, exact.Labels[i], accel.Labels[i])
				}
			}
		}
	}
}

// TestAcceleratedGaussianCloseToExact: the gaussian kernel is truncated at
// 3h on the grid path; the clustering must stay essentially identical.
func TestAcceleratedGaussianCloseToExact(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(40 + seed))
		pts := noisyBlobs(rng, 600, 3, 0.02, 0.1)
		exact := mustShift(t, pts, MeanShiftConfig{Bandwidth: 0.08, Kernel: GaussianKernel, Exact: true})
		accel := mustShift(t, pts, MeanShiftConfig{Bandwidth: 0.08, Kernel: GaussianKernel})
		if ari := AdjustedRandIndex(exact.Labels, accel.Labels); ari < 0.99 {
			t.Fatalf("seed=%d: gaussian accelerated ARI %.4f < 0.99", seed, ari)
		}
	}
}

// TestBinSeedingCloseToExact: bin seeding shifts far fewer seeds but must
// recover the same cluster structure.
func TestBinSeedingCloseToExact(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(60 + seed))
		pts := noisyBlobs(rng, 1000, 4, 0.015, 0.1)
		exact := mustShift(t, pts, MeanShiftConfig{Bandwidth: 0.08, Exact: true})
		var st MeanShiftStats
		binned := mustShift(t, pts, MeanShiftConfig{Bandwidth: 0.08, BinSeeding: true, Stats: &st})
		if st.Seeds >= st.Points {
			t.Fatalf("seed=%d: bin seeding did not reduce seeds (%d/%d)", seed, st.Seeds, st.Points)
		}
		if ari := AdjustedRandIndex(exact.Labels, binned.Labels); ari < 0.99 {
			t.Fatalf("seed=%d: binned ARI %.4f < 0.99", seed, ari)
		}
	}
}

// TestMeanShiftDeterministicAcrossSchedules: labels AND centers must be
// bit-identical across worker counts, GOMAXPROCS settings and repeated
// runs — the property the serial commit pass exists to guarantee. Run
// with -race in CI.
func TestMeanShiftDeterministicAcrossSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	pts := noisyBlobs(rng, 1500, 5, 0.02, 0.2)

	type variant struct {
		name string
		cfg  MeanShiftConfig
	}
	variants := []variant{
		{"exhaustive", MeanShiftConfig{Bandwidth: 0.07}},
		{"binned", MeanShiftConfig{Bandwidth: 0.07, BinSeeding: true}},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			var refLabels []int
			var refCenters []Point
			run := 0
			for _, procs := range []int{1, 4, 8} {
				prev := runtime.GOMAXPROCS(procs)
				for _, workers := range []int{0, 1, 4, 8} {
					cfg := v.cfg
					cfg.Workers = workers
					cfg.Scratch = NewScratch()
					for rep := 0; rep < 4; rep++ {
						res := mustShift(t, pts, cfg)
						if refLabels == nil {
							refLabels = append([]int(nil), res.Labels...)
							refCenters = res.Centers
							continue
						}
						run++
						for i := range refLabels {
							if res.Labels[i] != refLabels[i] {
								runtime.GOMAXPROCS(prev)
								t.Fatalf("procs=%d workers=%d rep=%d: label %d = %d, want %d",
									procs, workers, rep, i, res.Labels[i], refLabels[i])
							}
						}
						if len(res.Centers) != len(refCenters) {
							runtime.GOMAXPROCS(prev)
							t.Fatalf("procs=%d workers=%d: %d centers, want %d",
								procs, workers, len(res.Centers), len(refCenters))
						}
						for c := range refCenters {
							for k := range refCenters[c] {
								if res.Centers[c][k] != refCenters[c][k] {
									runtime.GOMAXPROCS(prev)
									t.Fatalf("procs=%d workers=%d: center %d[%d] = %v, want bit-identical %v",
										procs, workers, c, k, res.Centers[c][k], refCenters[c][k])
								}
							}
						}
					}
				}
				runtime.GOMAXPROCS(prev)
			}
			if run < 40 {
				t.Fatalf("only %d comparison runs executed", run)
			}
		})
	}
}

// TestMeanShiftStatsPopulated checks the cost profile reporting.
func TestMeanShiftStatsPopulated(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := noisyBlobs(rng, 800, 3, 0.02, 0.1)

	var exact MeanShiftStats
	mustShift(t, pts, MeanShiftConfig{Bandwidth: 0.08, Exact: true, Stats: &exact})
	if exact.Accelerated || exact.GridCells != 0 {
		t.Fatalf("exact run reported acceleration: %+v", exact)
	}
	if exact.Points != 800 || exact.Seeds != 800 || exact.Rounds == 0 || exact.Iterations < exact.Seeds {
		t.Fatalf("implausible exact stats: %+v", exact)
	}

	var binned MeanShiftStats
	mustShift(t, pts, MeanShiftConfig{Bandwidth: 0.08, BinSeeding: true, Stats: &binned})
	if !binned.Accelerated || binned.GridCells == 0 {
		t.Fatalf("binned run did not use the grid: %+v", binned)
	}
	if binned.Seeds != binned.GridCells {
		t.Fatalf("binned seeds %d != occupied cells %d", binned.Seeds, binned.GridCells)
	}
	if binned.Iterations >= exact.Iterations {
		t.Fatalf("bin seeding did not reduce iterations: %d vs %d", binned.Iterations, exact.Iterations)
	}

	before := TotalStats()
	mustShift(t, pts, MeanShiftConfig{Bandwidth: 0.08})
	after := TotalStats()
	if after.Runs != before.Runs+1 || after.Seeds < before.Seeds+800 {
		t.Fatalf("package totals not accumulated: %+v -> %+v", before, after)
	}
}

// TestMeanShiftScratchReuseIdentical: reusing one scratch across runs of
// different sizes must not change any result.
func TestMeanShiftScratchReuseIdentical(t *testing.T) {
	sc := NewScratch()
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{40, 900, 120, 2000} {
		pts := noisyBlobs(rng, n, 3, 0.02, 0.15)
		fresh := mustShift(t, pts, MeanShiftConfig{Bandwidth: 0.08})
		reused := mustShift(t, pts, MeanShiftConfig{Bandwidth: 0.08, Scratch: sc})
		for i := range fresh.Labels {
			if fresh.Labels[i] != reused.Labels[i] {
				t.Fatalf("n=%d: scratch reuse changed label %d", n, i)
			}
		}
		if len(fresh.Centers) != len(reused.Centers) {
			t.Fatalf("n=%d: scratch reuse changed center count", n)
		}
	}
}

// --- EstimateBandwidth ---

// estimateBandwidthRef is the historical sort-based implementation, kept
// as the test oracle for the exact (n ≤ cutoff) regime.
func estimateBandwidthRef(points []Point, quantile float64) float64 {
	n := len(points)
	if n < 2 {
		return 0
	}
	var dists []float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dists = append(dists, Dist(points[i], points[j]))
		}
	}
	sort.Float64s(dists)
	idx := int(quantile * float64(len(dists)-1))
	return dists[idx]
}

func TestEstimateBandwidthExactSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, n := range []int{2, 17, 100, 256} {
		pts := noisyBlobs(rng, n, 3, 0.05, 0.3)
		for _, q := range []float64{0, 0.25, 0.3, 0.5, 0.9, 1} {
			got := EstimateBandwidth(pts, q)
			want := estimateBandwidthRef(pts, q)
			if got != want {
				t.Fatalf("n=%d q=%v: got %v, want exact %v", n, q, got, want)
			}
		}
	}
}

func TestEstimateBandwidthLargeDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	pts := noisyBlobs(rng, 1200, 4, 0.05, 0.3)
	a := EstimateBandwidth(pts, 0.3)
	b := EstimateBandwidth(pts, 0.3)
	if a != b {
		t.Fatalf("sampled estimate not deterministic: %v vs %v", a, b)
	}
	if a <= 0 {
		t.Fatalf("estimate must be positive, got %v", a)
	}
	// The sampled value must approximate the exact quantile.
	exact := estimateBandwidthRef(pts, 0.3)
	if rel := math.Abs(a-exact) / exact; rel > 0.05 {
		t.Fatalf("sampled estimate %v deviates %.1f%% from exact %v", a, rel*100, exact)
	}
}

func TestEstimateBandwidthQuantileGuards(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	pts := noisyBlobs(rng, 50, 2, 0.05, 0.3)
	if got, want := EstimateBandwidth(pts, math.NaN()), EstimateBandwidth(pts, 0.3); got != want {
		t.Fatalf("NaN quantile: got %v, want default-0.3 value %v", got, want)
	}
	if got, want := EstimateBandwidth(pts, math.Inf(-1)), EstimateBandwidth(pts, 0); got != want {
		t.Fatalf("-Inf quantile: got %v, want %v", got, want)
	}
	if got, want := EstimateBandwidth(pts, math.Inf(1)), EstimateBandwidth(pts, 1); got != want {
		t.Fatalf("+Inf quantile: got %v, want %v", got, want)
	}
	if got := EstimateBandwidth(pts[:1], 0.3); got != 0 {
		t.Fatalf("single point: got %v, want 0", got)
	}
	if got := EstimateBandwidth(nil, 0.3); got != 0 {
		t.Fatalf("no points: got %v, want 0", got)
	}
}

func TestSelectKth(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		k := rng.Intn(n)
		if got := selectKth(append([]float64(nil), xs...), k); got != sorted[k] {
			t.Fatalf("trial %d: selectKth(%d) = %v, want %v", trial, k, got, sorted[k])
		}
	}
	// Sorted and constant inputs (median-of-three worst cases).
	asc := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	if got := selectKth(append([]float64(nil), asc...), 6); got != 7 {
		t.Fatalf("ascending: got %v", got)
	}
	flat := []float64{3, 3, 3, 3}
	if got := selectKth(append([]float64(nil), flat...), 2); got != 3 {
		t.Fatalf("constant: got %v", got)
	}
}
