package index

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/mosaic-hpc/mosaic/internal/category"
	"github.com/mosaic-hpc/mosaic/internal/core"
	"github.com/mosaic-hpc/mosaic/internal/store"
)

// Epoch-snapshot semantics: queries must observe one consistent
// state — never a half-applied rebuild, never a torn delta fold —
// while writers and the background compactor churn underneath.

// TestSnapshotConsistentMidRebuild populates world A (evens carry
// write_on_end, odds carry read_on_start), then rebuilds to the
// inverted world B from a real store while queries hammer the index.
// Every query answer must be exactly world A's set or exactly world
// B's set; a mixed answer means a torn swap.
func TestSnapshotConsistentMidRebuild(t *testing.T) {
	const n = 400
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	const fp = "cfg-midrebuild000000"

	ix := New()
	evens := make(map[store.TraceID]bool, n/2)
	odds := make(map[store.TraceID]bool, n/2)
	var items []Entry
	for i := 0; i < n; i++ {
		tid := id(i)
		catA, catB := "read_on_start", "write_on_end"
		if i%2 == 0 {
			catA, catB = catB, catA
			evens[tid] = true
		} else {
			odds[tid] = true
		}
		items = append(items, Entry{ID: tid, Cats: set(category.Category(catA))})
		if err := st.PutResult(tid, fp, &core.Result{Labels: []string{catB}}); err != nil {
			t.Fatal(err)
		}
	}
	ix.Load(items) // world A live; the store holds world B

	var done atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !done.Load() {
				got, err := ix.Query("write_on_end")
				if err != nil {
					t.Error(err)
					return
				}
				if len(got) != n/2 {
					t.Errorf("torn snapshot: %d matches, want %d", len(got), n/2)
					return
				}
				world := evens
				if !evens[got[0]] {
					world = odds
				}
				for _, tid := range got {
					if !world[tid] {
						t.Errorf("mixed worlds in one answer: %s", tid)
						return
					}
				}
			}
		}()
	}
	for r := 0; r < 20; r++ {
		if _, err := ix.Rebuild(st, fp); err != nil {
			t.Fatal(err)
		}
		ix.Load(items) // back to world A, again atomically
	}
	done.Store(true)
	wg.Wait()
}

// TestSnapshotConcurrentChurn runs Add/Remove/Query/AxisCounts/
// Categories across goroutines with a tiny compaction threshold, so
// folds race real traffic under -race. Each goroutine owns a disjoint
// ID range; the terminal state is therefore deterministic and checked
// against a sequentially-built oracle.
func TestSnapshotConcurrentChurn(t *testing.T) {
	ix := New()
	ix.compactMin = 8
	const (
		goroutines = 8
		perG       = 200
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perG; i++ {
				n := g*perG + i
				ix.Add(id(n), set("write_on_end", "metadata_high_spike"))
				switch rng.Intn(4) {
				case 0:
					ix.Remove(id(g*perG + rng.Intn(i+1)))
				case 1:
					ix.Add(id(g*perG+rng.Intn(i+1)), set("read_on_start"))
				case 2:
					if _, err := ix.Query("write_on_end NOT read_on_start"); err != nil {
						t.Error(err)
						return
					}
				default:
					ix.AxisCounts()
					ix.Categories(id(n))
				}
			}
		}(g)
	}
	wg.Wait()
	ix.waitCompact()

	// Replay the same per-goroutine histories sequentially into the
	// oracle: disjoint ranges make cross-goroutine order irrelevant.
	or := NewOracle()
	for g := 0; g < goroutines; g++ {
		rng := rand.New(rand.NewSource(int64(g)))
		for i := 0; i < perG; i++ {
			n := g*perG + i
			or.Add(id(n), set("write_on_end", "metadata_high_spike"))
			switch rng.Intn(4) {
			case 0:
				or.Remove(id(g*perG + rng.Intn(i+1)))
			case 1:
				or.Add(id(g*perG+rng.Intn(i+1)), set("read_on_start"))
			}
		}
	}
	checkAgree(t, ix, or, diffQueries)
}

// TestDeltaCompactionInterleaved forces folds every few ops and
// verifies remove → re-add → remove chains survive the generation
// merge: the fold must honor latest-wins, and ops that arrive during
// a fold must carry over, not vanish.
func TestDeltaCompactionInterleaved(t *testing.T) {
	ix, or := New(), NewOracle()
	ix.compactMin = 4
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		tid := id(rng.Intn(60)) // small ID space: constant overwrite pressure
		switch rng.Intn(3) {
		case 0:
			ix.Remove(tid)
			or.Remove(tid)
		case 1:
			ix.Add(tid, set("write_on_end"))
			or.Add(tid, set("write_on_end"))
		default:
			ix.Add(tid, set("read_on_start", "metadata_high_spike"))
			or.Add(tid, set("read_on_start", "metadata_high_spike"))
		}
		if i%97 == 0 {
			ix.waitCompact()
			checkAgree(t, ix, or, diffQueries[:8])
		}
	}
	ix.waitCompact()
	checkAgree(t, ix, or, diffQueries)
	// The whole history must have folded into very few residual ops.
	if got := len(ix.snap.Load().ops); got > ix.compactMin*2 {
		t.Fatalf("delta never compacted: %d residual ops", got)
	}
}

// TestSnapshotEmptyCategorySet: a trace indexed with no categories is
// still part of the universe (matches NOT queries) — in the
// generation and in the delta.
func TestSnapshotEmptyCategorySet(t *testing.T) {
	ix := New()
	ix.Add(id(1), set())
	ix.Add(id(2), set("write_on_end"))
	if ix.Len() != 2 {
		t.Fatalf("Len = %d, want 2", ix.Len())
	}
	got, err := ix.Query("NOT write_on_end")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []store.TraceID{id(1)}) {
		t.Fatalf("NOT query = %v, want [%s]", got, id(1))
	}
	ix.compactMin = 1
	ix.Add(id(3), set())
	ix.waitCompact()
	got, err = ix.Query("NOT write_on_end")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("after compaction NOT query = %v, want 2 ids", got)
	}
}

func TestMergeSortedLoserTree(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, k := range []int{2, 8, 9, 32, 100} {
		lists := make([][]string, k)
		want := map[string]bool{}
		for i := range lists {
			n := rng.Intn(50)
			for j := 0; j < n; j++ {
				s := fmt.Sprintf("%04x", rng.Intn(4096))
				lists[i] = append(lists[i], s)
				want[s] = true
			}
			sort.Strings(lists[i])
		}
		exp := make([]string, 0, len(want))
		for s := range want {
			exp = append(exp, s)
		}
		sort.Strings(exp)
		got := MergeSorted(lists...)
		if len(exp) == 0 {
			if got != nil {
				t.Fatalf("k=%d: empty merge = %v, want nil", k, got)
			}
			continue
		}
		if !reflect.DeepEqual(got, exp) {
			t.Fatalf("k=%d: merge mismatch: got %d ids want %d", k, len(got), len(exp))
		}
		// The Into form must reuse its destination.
		buf := make([]string, 0, 8)
		got2 := MergeSortedInto(buf, lists...)
		if !reflect.DeepEqual(got2, exp) {
			t.Fatalf("k=%d: MergeSortedInto mismatch", k)
		}
	}
}

func TestMergeSortedUnsortedFallback(t *testing.T) {
	// 9 lists forces the loser tree; one unsorted input must still
	// produce a sorted deduplicated union.
	lists := make([][]string, 9)
	for i := range lists {
		lists[i] = []string{"b", "c"}
	}
	lists[4] = []string{"z", "a", "z"}
	got := MergeSorted(lists...)
	want := []string{"a", "b", "c", "z"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("fallback merge = %v, want %v", got, want)
	}
}
