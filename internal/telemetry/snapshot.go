package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// SeriesSnapshot is a point-in-time copy of one instrument, detached
// from the registry. Counter and gauge series carry Value; histogram
// series carry Bounds/Counts/Sum/Count (Counts is per-bucket,
// non-cumulative, with the implicit +Inf bucket last, so
// len(Counts) == len(Bounds)+1).
type SeriesSnapshot struct {
	Labels Labels    `json:"labels,omitempty"`
	Value  float64   `json:"value,omitempty"`
	Bounds []float64 `json:"bounds,omitempty"`
	Counts []int64   `json:"counts,omitempty"`
	Sum    float64   `json:"sum,omitempty"`
	Count  int64     `json:"count,omitempty"`
}

// FamilySnapshot groups every series sharing one metric name, in the
// shape the cluster metrics federation ships between nodes.
type FamilySnapshot struct {
	Name   string           `json:"name"`
	Help   string           `json:"help,omitempty"`
	Kind   string           `json:"kind"` // "counter" | "gauge" | "histogram"
	Series []SeriesSnapshot `json:"series"`
}

func (k metricKind) String() string {
	return [...]string{"counter", "gauge", "histogram"}[k]
}

// Export snapshots every registered instrument, running OnCollect
// hooks first so lazily-maintained values are current. Families appear
// in first-registration order, series within a family in label order —
// the same order WritePrometheus renders.
func (r *Registry) Export() []FamilySnapshot {
	r.runCollectors()
	fams := r.families()
	out := make([]FamilySnapshot, 0, len(fams))
	for _, f := range fams {
		fs := FamilySnapshot{Name: f.name, Help: f.help, Kind: f.kind.String()}
		for _, m := range f.series {
			ss := SeriesSnapshot{Labels: m.labels}
			switch m.kind {
			case kindCounter:
				ss.Value = float64(m.ctr.Value())
			case kindGauge:
				ss.Value = m.gauge.Value()
			case kindHistogram:
				hs := m.hist.Snapshot()
				ss.Bounds = hs.UpperBounds
				ss.Counts = hs.Counts
				ss.Sum = hs.Sum
				ss.Count = hs.Count
			}
			fs.Series = append(fs.Series, ss)
		}
		out = append(out, fs)
	}
	return out
}

// GaugeMergeRule selects how one gauge family is combined across
// nodes. Counters always sum and histograms always merge buckets;
// gauges are the only kind whose aggregate is a modeling choice
// (queue depths sum, capacities and build flags max, "weakest node"
// health indicators min).
type GaugeMergeRule int

const (
	MergeSum GaugeMergeRule = iota
	MergeMax
	MergeMin
)

// MergeFamilies combines per-node registry exports into one federated
// view: counters sum, histograms merge bucket-by-bucket (mismatched
// bucket layouts are remapped onto the union of bounds — exact in the
// cumulative sense, never a panic), and gauges follow the per-family
// rule in gaugeRules (default MergeSum). Series identity within a
// family is the label set. Node names are iterated in sorted order so
// the result is deterministic; malformed histogram series (bucket and
// bound lengths out of step) are dropped rather than corrupting the
// merge.
func MergeFamilies(perNode map[string][]FamilySnapshot, gaugeRules map[string]GaugeMergeRule) []FamilySnapshot {
	nodes := make([]string, 0, len(perNode))
	for n := range perNode {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)

	var out []FamilySnapshot
	famIdx := make(map[string]int)
	for _, node := range nodes {
		for _, f := range perNode[node] {
			i, ok := famIdx[f.Name]
			if !ok {
				i = len(out)
				famIdx[f.Name] = i
				out = append(out, FamilySnapshot{Name: f.Name, Help: f.Help, Kind: f.Kind})
			}
			dst := &out[i]
			if dst.Kind != f.Kind {
				continue // kind clash across nodes; keep the first seen
			}
			rule := MergeSum
			if f.Kind == "gauge" {
				if r, ok := gaugeRules[f.Name]; ok {
					rule = r
				}
			}
			for _, s := range f.Series {
				mergeSeries(dst, s, rule)
			}
		}
	}
	for i := range out {
		sortSeries(out[i].Series)
	}
	return out
}

// mergeSeries folds one node's series into the federated family.
func mergeSeries(dst *FamilySnapshot, s SeriesSnapshot, rule GaugeMergeRule) {
	if dst.Kind == "histogram" && len(s.Counts) != len(s.Bounds)+1 {
		return // malformed shipment; skip rather than guess
	}
	key := s.Labels.key()
	for i := range dst.Series {
		if dst.Series[i].Labels.key() != key {
			continue
		}
		d := &dst.Series[i]
		switch dst.Kind {
		case "counter":
			d.Value += s.Value
		case "gauge":
			switch rule {
			case MergeMax:
				d.Value = math.Max(d.Value, s.Value)
			case MergeMin:
				d.Value = math.Min(d.Value, s.Value)
			default:
				d.Value += s.Value
			}
		case "histogram":
			mergeHistogramInto(d, s)
		}
		return
	}
	// First occurrence of this label set: copy so later merges never
	// alias the caller's slices.
	cp := SeriesSnapshot{
		Labels: s.Labels,
		Value:  s.Value,
		Bounds: append([]float64(nil), s.Bounds...),
		Counts: append([]int64(nil), s.Counts...),
		Sum:    s.Sum,
		Count:  s.Count,
	}
	dst.Series = append(dst.Series, cp)
}

// mergeHistogramInto adds src's buckets into d. Identical layouts add
// elementwise; differing layouts are remapped onto the union of both
// bound sets, which is exact in the cumulative sense because every
// source bound appears in the union.
func mergeHistogramInto(d *SeriesSnapshot, src SeriesSnapshot) {
	if len(d.Counts) != len(d.Bounds)+1 {
		// The accumulated side is malformed (shouldn't happen — guarded
		// on entry); replace it with the valid source.
		d.Bounds = append([]float64(nil), src.Bounds...)
		d.Counts = append([]int64(nil), src.Counts...)
		d.Sum = src.Sum
		d.Count = src.Count
		return
	}
	if equalBounds(d.Bounds, src.Bounds) {
		for i := range src.Counts {
			d.Counts[i] += src.Counts[i]
		}
	} else {
		union := unionBounds(d.Bounds, src.Bounds)
		counts := make([]int64, len(union)+1)
		remapCounts(counts, union, d.Bounds, d.Counts)
		remapCounts(counts, union, src.Bounds, src.Counts)
		d.Bounds = union
		d.Counts = counts
	}
	d.Sum += src.Sum
	d.Count += src.Count
}

func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// unionBounds returns the sorted union of two strictly-increasing
// bound slices.
func unionBounds(a, b []float64) []float64 {
	out := make([]float64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i >= len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default: // equal
			out = append(out, a[i])
			i, j = i+1, j+1
		}
	}
	return out
}

// remapCounts adds counts (buckets bounded by bounds, +Inf last) into
// dst, whose buckets are bounded by union (+Inf last). Every bound in
// bounds appears in union, so each source bucket lands in the union
// bucket sharing its upper bound.
func remapCounts(dst []int64, union, bounds []float64, counts []int64) {
	for i, b := range bounds {
		idx := sort.SearchFloat64s(union, b)
		if idx >= len(union) || union[idx] != b {
			// Defensive: a bound missing from the union (impossible by
			// construction) spills into +Inf rather than panicking.
			idx = len(union)
		}
		dst[idx] += counts[i]
	}
	dst[len(union)] += counts[len(bounds)]
}

// LabelFamilies rewrites per-node exports into one family list with a
// node label added to every series — the "preserve per-node series"
// federation mode. Nodes are iterated in sorted order.
func LabelFamilies(perNode map[string][]FamilySnapshot, label string) []FamilySnapshot {
	if label == "" {
		label = "node"
	}
	nodes := make([]string, 0, len(perNode))
	for n := range perNode {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)

	var out []FamilySnapshot
	famIdx := make(map[string]int)
	for _, node := range nodes {
		for _, f := range perNode[node] {
			i, ok := famIdx[f.Name]
			if !ok {
				i = len(out)
				famIdx[f.Name] = i
				out = append(out, FamilySnapshot{Name: f.Name, Help: f.Help, Kind: f.Kind})
			}
			dst := &out[i]
			for _, s := range f.Series {
				labeled := make(Labels, len(s.Labels)+1)
				for k, v := range s.Labels {
					labeled[k] = v
				}
				labeled[label] = node
				dst.Series = append(dst.Series, SeriesSnapshot{
					Labels: labeled,
					Value:  s.Value,
					Bounds: append([]float64(nil), s.Bounds...),
					Counts: append([]int64(nil), s.Counts...),
					Sum:    s.Sum,
					Count:  s.Count,
				})
			}
		}
	}
	for i := range out {
		sortSeries(out[i].Series)
	}
	return out
}

func sortSeries(series []SeriesSnapshot) {
	sort.SliceStable(series, func(i, j int) bool {
		return series[i].Labels.key() < series[j].Labels.key()
	})
}

// WriteFamilies renders family snapshots in the Prometheus text
// exposition format (version 0.0.4) — the serialization step of the
// federated /v1/cluster/metrics endpoint.
func WriteFamilies(w io.Writer, fams []FamilySnapshot) error {
	var b strings.Builder
	for _, f := range fams {
		if f.Help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.Name, f.Help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.Name, f.Kind)
		for _, s := range f.Series {
			switch f.Kind {
			case "histogram":
				if len(s.Counts) != len(s.Bounds)+1 {
					continue
				}
				var cum int64
				for i, bound := range s.Bounds {
					cum += s.Counts[i]
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.Name, withLabel(s.Labels, "le", formatFloat(bound)), cum)
				}
				cum += s.Counts[len(s.Counts)-1]
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.Name, withLabel(s.Labels, "le", "+Inf"), cum)
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.Name, s.Labels.key(), formatFloat(s.Sum))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.Name, s.Labels.key(), s.Count)
			default:
				fmt.Fprintf(&b, "%s%s %s\n", f.Name, s.Labels.key(), formatFloat(s.Value))
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
