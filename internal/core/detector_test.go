package core

import (
	"testing"

	"github.com/mosaic-hpc/mosaic/internal/category"
)

func TestDetectorStrings(t *testing.T) {
	if DetectMeanShift.String() != "meanshift" || DetectDFT.String() != "dft" || DetectHybrid.String() != "hybrid" {
		t.Fatal("detector strings")
	}
	if PeriodicityDetector(9).String() == "" {
		t.Fatal("unknown detector should still render")
	}
}

func TestDFTDetectorOnCheckpointJob(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PeriodicityDetector = DetectDFT
	res, err := Categorize(checkpointJob(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Write.Periodic() {
		t.Fatal("DFT detector missed the checkpoint train")
	}
	p := res.Write.DominantPeriod()
	if p < 450 || p > 750 {
		t.Fatalf("DFT period = %g, want ~600", p)
	}
	if !res.Categories.Has(category.PeriodicMagnitude(category.DirWrite, category.MagMinute)) {
		t.Fatalf("categories = %v", res.Categories)
	}
}

func TestHybridDetectorAgreesOnCleanTrain(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PeriodicityDetector = DetectHybrid
	res, err := Categorize(checkpointJob(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Write.Periodic() {
		t.Fatal("hybrid detector missed the checkpoint train")
	}
	p := res.Write.DominantPeriod()
	if p < 500 || p > 700 {
		t.Fatalf("hybrid period = %g", p)
	}
}

func TestDetectorsRejectAperiodicJob(t *testing.T) {
	for _, det := range []PeriodicityDetector{DetectMeanShift, DetectDFT, DetectHybrid} {
		cfg := DefaultConfig()
		cfg.PeriodicityDetector = det
		j := checkpointJob()
		// Strip the checkpoints, keep only start read + end write.
		j.Records = append(j.Records[:1], j.Records[len(j.Records)-1])
		res, err := Categorize(j, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Write.Periodic() {
			t.Fatalf("detector %v flagged an aperiodic trace", det)
		}
	}
}

func TestHarmonicOf(t *testing.T) {
	cases := []struct {
		a, b float64
		want bool
	}{
		{300, 300, true},
		{150, 300, true},  // b/2
		{100, 300, true},  // b/3
		{600, 300, true},  // 2b
		{900, 300, true},  // 3b
		{430, 300, false}, // nothing close
		{0, 300, false},
		{300, 0, false},
	}
	for _, c := range cases {
		if got := harmonicOf(c.a, c.b, 0.1); got != c.want {
			t.Errorf("harmonicOf(%g, %g) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDFTGroupsShape(t *testing.T) {
	j := checkpointJob()
	merged := j.WriteIntervals()
	groups := dftGroups(merged, j.Runtime)
	if len(groups) != 1 {
		t.Fatalf("groups = %d", len(groups))
	}
	g := groups[0]
	if g.Count < 2 || g.MeanBytes <= 0 || g.BusyRatio <= 0 {
		t.Fatalf("group = %+v", g)
	}
	if got := dftGroups(nil, 100); got != nil {
		t.Fatal("empty ops should give no groups")
	}
}
