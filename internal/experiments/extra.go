package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"github.com/mosaic-hpc/mosaic/internal/category"
	"github.com/mosaic-hpc/mosaic/internal/core"
	"github.com/mosaic-hpc/mosaic/internal/darshan"
	"github.com/mosaic-hpc/mosaic/internal/dsp"
	"github.com/mosaic-hpc/mosaic/internal/gen"
	"github.com/mosaic-hpc/mosaic/internal/interval"
	"github.com/mosaic-hpc/mosaic/internal/parallel"
	"github.com/mosaic-hpc/mosaic/internal/segment"
)

// --- Section III-B1: per-application categorization stability ----------

// StabilityResult reports how often executions of the same application are
// categorized identically, the hypothesis behind deduplication (the paper
// measures ~97% for LAMMPS and ~80% for NEK5000).
type StabilityResult struct {
	PerArchetype map[string]float64 // archetype -> fraction of runs matching the app's modal category set
	Refs         []PaperRef
}

// Stability generates appCount applications per archetype, categorizes
// runsPerApp executions of each, and measures agreement with the modal
// category set.
func Stability(seed int64, appCount, runsPerApp int, cfg core.Config) (*StabilityResult, error) {
	res := &StabilityResult{PerArchetype: map[string]float64{}}
	rng := rand.New(rand.NewSource(seed))
	for _, arch := range gen.DefaultArchetypes() {
		var agree, total int
		for a := 0; a < appCount; a++ {
			params := arch.Params(rng)
			sets := make([]category.Set, 0, runsPerApp)
			for r := 0; r < runsPerApp; r++ {
				runRng := rand.New(rand.NewSource(seed + int64(a*1000+r)))
				b := gen.NewBuilder(runRng, "stab", arch.Exe, uint64(a*runsPerApp+r+1), params.Ranks, params.RuntimeBase*(0.9+runRng.Float64()*0.25))
				arch.Build(b, params)
				out, err := core.Categorize(b.Job(), cfg)
				if err != nil {
					return nil, err
				}
				sets = append(sets, out.Categories)
			}
			modal := modalSet(sets)
			for _, s := range sets {
				total++
				if s.Equal(modal) {
					agree++
				}
			}
		}
		if total > 0 {
			res.PerArchetype[arch.Name] = float64(agree) / float64(total)
		}
	}
	res.Refs = []PaperRef{
		{Name: "LAMMPS-like stability (checkpointer-minute)", Paper: 0.97, Measured: res.PerArchetype["checkpointer-minute"]},
		{Name: "NEK5000-like stability (checkpointer-hour)", Paper: 0.80, Measured: res.PerArchetype["checkpointer-hour"]},
	}
	return res, nil
}

func modalSet(sets []category.Set) category.Set {
	best, bestN := category.Set(nil), -1
	for _, s := range sets {
		n := 0
		for _, o := range sets {
			if s.Equal(o) {
				n++
			}
		}
		if n > bestN {
			best, bestN = s, n
		}
	}
	return best
}

// Write renders the result.
func (r *StabilityResult) Write(w io.Writer) {
	fmt.Fprintf(w, "Per-application categorization stability (Section III-B1)\n")
	for _, arch := range gen.DefaultArchetypes() {
		if v, ok := r.PerArchetype[arch.Name]; ok {
			fmt.Fprintf(w, "  %-26s %6.1f%%\n", arch.Name, v*100)
		}
	}
	writeRefs(w, "Reference points", r.Refs)
}

// --- Section IV-E: performance and parallel scaling --------------------

// PerfResult reports pipeline throughput at several worker counts.
type PerfResult struct {
	Traces   int
	Apps     int
	Workers  []int
	Elapsed  []time.Duration
	PerTrace []time.Duration // mean categorization latency per unique app
	Speedup  []float64       // relative to 1 worker
}

// Perf measures categorization wall time at each worker count over the
// same deduplicated corpus.
func Perf(p gen.Profile, cfg core.Config, workerCounts []int) (*PerfResult, error) {
	corpus := gen.Plan(p)
	pre := core.NewPreprocessor()
	corpus.Each(func(r gen.Run) bool {
		pre.Add(r.Job, nil)
		return true
	})
	groups := pre.Groups()
	res := &PerfResult{Traces: pre.Stats().Total, Apps: len(groups)}
	var base time.Duration
	for _, wkr := range workerCounts {
		start := time.Now()
		var firstErr error
		parallel.ForEach(wkr, len(groups), func(i int) {
			if _, err := core.Categorize(groups[i].Heaviest, cfg); err != nil && firstErr == nil {
				firstErr = err
			}
		})
		if firstErr != nil {
			return nil, firstErr
		}
		el := time.Since(start)
		if len(res.Elapsed) == 0 {
			base = el
		}
		res.Workers = append(res.Workers, wkr)
		res.Elapsed = append(res.Elapsed, el)
		res.PerTrace = append(res.PerTrace, el/time.Duration(maxInt(1, len(groups))))
		res.Speedup = append(res.Speedup, float64(base)/float64(el))
	}
	return res, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Write renders the result.
func (r *PerfResult) Write(w io.Writer) {
	fmt.Fprintf(w, "Pipeline performance (Section IV-E; paper: full year in 165 min on 64 cores)\n")
	fmt.Fprintf(w, "  corpus: %d traces, %d unique apps, GOMAXPROCS=%d\n", r.Traces, r.Apps, runtime.GOMAXPROCS(0))
	for i := range r.Workers {
		fmt.Fprintf(w, "  workers=%-3d elapsed=%-12v per-app=%-10v speedup=%.2fx\n",
			r.Workers[i], r.Elapsed[i].Round(time.Millisecond), r.PerTrace[i].Round(time.Microsecond), r.Speedup[i])
	}
}

// --- Ablations ----------------------------------------------------------

// AblationResult reports detection quality under parameter sweeps and the
// DFT baseline comparison.
type AblationResult struct {
	// MergeSweep: neighbor-merge thresholds -> periodic write detection
	// recall on checkpointer traces.
	MergeSweep map[string]float64
	// BandwidthSweep: Mean Shift bandwidth -> periodic recall / false
	// positive rate pairs.
	BandwidthRecall map[float64]float64
	BandwidthFP     map[float64]float64
	// Detectors: detector name -> (recall on periodic, false positives on
	// non-periodic, recall on two interleaved periodic ops).
	DetectorRecall map[string]float64
	DetectorFP     map[string]float64
	DetectorMixed  map[string]float64
}

// periodicOps extracts merged write ops from a generated trace.
func periodicOps(j *darshan.Job, cfg core.Config) []interval.Interval {
	pol := interval.NeighborPolicy{RuntimeFraction: cfg.MergeRuntimeFraction, NeighborFraction: cfg.MergeNeighborFraction}
	return interval.Merge(interval.Clip(j.WriteIntervals(), j.Runtime), j.Runtime, pol)
}

// meanShiftPeriodic reports whether the segmentation detector finds a
// periodic group.
func meanShiftPeriodic(ops []interval.Interval, runtime float64, bandwidth float64) bool {
	segs := segment.Split(ops, runtime)
	dc := segment.DefaultDetectConfig(runtime)
	if bandwidth > 0 {
		dc.Bandwidth = bandwidth
	}
	groups, err := segment.Detect(segs, dc)
	return err == nil && len(groups) > 0
}

// Ablation runs the parameter sweeps on n checkpointer traces and n
// non-periodic traces, plus a mixed two-period workload.
func Ablation(seed int64, n int, cfg core.Config) (*AblationResult, error) {
	res := &AblationResult{
		MergeSweep:      map[string]float64{},
		BandwidthRecall: map[float64]float64{},
		BandwidthFP:     map[float64]float64{},
		DetectorRecall:  map[string]float64{},
		DetectorFP:      map[string]float64{},
		DetectorMixed:   map[string]float64{},
	}
	rng := rand.New(rand.NewSource(seed))
	ckpt, _ := gen.ArchetypeByName("checkpointer-minute")
	rcw, _ := gen.ArchetypeByName("read-compute-write")

	makeTrace := func(arch gen.Archetype, i int) *darshan.Job {
		p := arch.Params(rng)
		b := gen.NewBuilder(rng, "abl", arch.Exe, uint64(i+1), p.Ranks, p.RuntimeBase)
		arch.Build(b, p)
		return b.Job()
	}
	periodicJobs := make([]*darshan.Job, n)
	flatJobs := make([]*darshan.Job, n)
	for i := 0; i < n; i++ {
		periodicJobs[i] = makeTrace(ckpt, i)
		flatJobs[i] = makeTrace(rcw, n+i)
	}

	// Merge-threshold sweep: overly aggressive neighbor merging fuses
	// checkpoints together and destroys periodicity.
	for _, mp := range []struct {
		name string
		rf   float64
	}{{"rf=0 (off)", 0}, {"rf=0.001 (paper)", 0.001}, {"rf=0.01", 0.01}, {"rf=0.1", 0.1}} {
		c := cfg
		c.MergeRuntimeFraction = mp.rf
		hits := 0
		for _, j := range periodicJobs {
			if meanShiftPeriodic(periodicOps(j, c), j.Runtime, cfg.MeanShiftBandwidth) {
				hits++
			}
		}
		res.MergeSweep[mp.name] = float64(hits) / float64(n)
	}

	// Bandwidth sweep.
	for _, bw := range []float64{0.005, 0.02, 0.05, 0.15, 0.5} {
		hits, fps := 0, 0
		for _, j := range periodicJobs {
			if meanShiftPeriodic(periodicOps(j, cfg), j.Runtime, bw) {
				hits++
			}
		}
		for _, j := range flatJobs {
			if meanShiftPeriodic(periodicOps(j, cfg), j.Runtime, bw) {
				fps++
			}
		}
		res.BandwidthRecall[bw] = float64(hits) / float64(n)
		res.BandwidthFP[bw] = float64(fps) / float64(n)
	}

	// Detector comparison: Mean Shift segmentation vs DFT vs
	// autocorrelation, including the paper's "two intricate periodic
	// behaviors" argument (a mixed workload with two interleaved periods).
	type detector struct {
		name string
		fn   func(ops []interval.Interval, runtime float64) int // number of periodic behaviours found
	}
	dets := []detector{
		{"meanshift", func(ops []interval.Interval, rt float64) int {
			segs := segment.Split(ops, rt)
			groups, _ := segment.Detect(segs, segment.DefaultDetectConfig(rt))
			return len(groups)
		}},
		{"dft", func(ops []interval.Interval, rt float64) int {
			if dsp.DetectPeriodicity(ops, rt, dsp.DetectorConfig{}).Periodic {
				return 1
			}
			return 0
		}},
		{"dft-iter", func(ops []interval.Interval, rt float64) int {
			return len(dsp.DetectMultiplePeriodicities(ops, rt, 3, dsp.DetectorConfig{}).Periods)
		}},
		{"autocorr", func(ops []interval.Interval, rt float64) int {
			if dsp.DetectByAutocorrelation(ops, rt, dsp.DetectorConfig{}).Periodic {
				return 1
			}
			return 0
		}},
	}
	mixed := make([]*darshan.Job, n)
	for i := 0; i < n; i++ {
		mixed[i] = mixedPeriodicTrace(rng, uint64(i+1))
	}
	for _, d := range dets {
		hits, fps, mixedOK := 0, 0, 0
		for _, j := range periodicJobs {
			if d.fn(periodicOps(j, cfg), j.Runtime) >= 1 {
				hits++
			}
		}
		for _, j := range flatJobs {
			if d.fn(periodicOps(j, cfg), j.Runtime) >= 1 {
				fps++
			}
		}
		for _, j := range mixed {
			// Success on the mixed workload means identifying BOTH
			// periodic operations, which a single dominant frequency
			// cannot express.
			if d.fn(periodicOps(j, cfg), j.Runtime) >= 2 {
				mixedOK++
			}
		}
		res.DetectorRecall[d.name] = float64(hits) / float64(n)
		res.DetectorFP[d.name] = float64(fps) / float64(n)
		res.DetectorMixed[d.name] = float64(mixedOK) / float64(n)
	}
	return res, nil
}

// mixedPeriodicTrace builds an application with two interleaved periodic
// write operations of distinct period and volume — the case the paper
// says frequency techniques fail to distinguish.
func mixedPeriodicTrace(rng *rand.Rand, id uint64) *darshan.Job {
	b := gen.NewBuilder(rng, "abl", "/apps/bin/mixed", id, 64, 7200)
	b.Periodic(gen.PeriodicSpec{Period: 300, PhaseFrac: 0.05, BytesPer: 2 << 30, Records: 16, Jitter: 0.01, Write: true})
	b.Periodic(gen.PeriodicSpec{Period: 730, PhaseFrac: 0.04, BytesPer: 48 << 30, Records: 16, Jitter: 0.01, Write: true, StartAt: 95})
	return b.Job()
}

// Write renders the result.
func (r *AblationResult) Write(w io.Writer) {
	fmt.Fprintf(w, "Ablation: neighbor-merge runtime fraction -> periodic write recall\n")
	for _, k := range []string{"rf=0 (off)", "rf=0.001 (paper)", "rf=0.01", "rf=0.1"} {
		fmt.Fprintf(w, "  %-18s %6.1f%%\n", k, r.MergeSweep[k]*100)
	}
	fmt.Fprintf(w, "Ablation: Mean Shift bandwidth -> recall / false positives\n")
	for _, bw := range []float64{0.005, 0.02, 0.05, 0.15, 0.5} {
		fmt.Fprintf(w, "  bw=%-6g recall=%6.1f%%  false-positive=%6.1f%%\n", bw, r.BandwidthRecall[bw]*100, r.BandwidthFP[bw]*100)
	}
	fmt.Fprintf(w, "Ablation: detector comparison (recall / FP / both-of-two-periods)\n")
	for _, d := range []string{"meanshift", "dft", "dft-iter", "autocorr"} {
		fmt.Fprintf(w, "  %-10s recall=%6.1f%%  fp=%6.1f%%  mixed=%6.1f%%\n",
			d, r.DetectorRecall[d]*100, r.DetectorFP[d]*100, r.DetectorMixed[d]*100)
	}
}
