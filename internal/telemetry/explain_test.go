package telemetry

import (
	"strings"
	"testing"
)

func TestExplainMetricsObserve(t *testing.T) {
	reg := NewRegistry()
	m := NewExplainMetrics(reg)

	m.Observe(20, 2, 4096)
	m.Observe(10, 0, 1024)

	if got := m.Explanations.Value(); got != 2 {
		t.Fatalf("Explanations = %d, want 2", got)
	}
	if got := m.Evidence.Value(); got != 30 {
		t.Fatalf("Evidence = %d, want 30", got)
	}
	if got := m.NearMisses.Value(); got != 2 {
		t.Fatalf("NearMisses = %d, want 2", got)
	}
	if s := m.EvidenceEntries.Snapshot(); s.Count != 2 || s.Sum != 30 {
		t.Fatalf("EvidenceEntries snapshot = %+v", s)
	}
	// Ratios: 2/20 = 0.1 and 0/10 = 0.
	if s := m.NearMissRatio.Snapshot(); s.Count != 2 || s.Sum != 0.1 {
		t.Fatalf("NearMissRatio snapshot = %+v", s)
	}
	if s := m.Bytes.Snapshot(); s.Count != 2 || s.Sum != 5120 {
		t.Fatalf("Bytes snapshot = %+v", s)
	}
}

func TestExplainMetricsEdgeCases(t *testing.T) {
	// A nil receiver is a no-op, so callers need no instrumentation guard.
	var m *ExplainMetrics
	m.Observe(5, 1, 100) // must not panic

	reg := NewRegistry()
	m = NewExplainMetrics(reg)
	// Zero evidence: no ratio observation (avoid 0/0), no bytes when <= 0.
	m.Observe(0, 0, 0)
	if s := m.NearMissRatio.Snapshot(); s.Count != 0 {
		t.Fatalf("zero-evidence explanation observed a ratio: %+v", s)
	}
	if s := m.Bytes.Snapshot(); s.Count != 0 {
		t.Fatalf("zero-byte explanation observed a size: %+v", s)
	}
	if got := m.Explanations.Value(); got != 1 {
		t.Fatalf("Explanations = %d, want 1", got)
	}
}

func TestExplainMetricsExposition(t *testing.T) {
	reg := NewRegistry()
	m := NewExplainMetrics(reg)
	m.Observe(16, 1, 2048)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"mosaic_explain_explanations_total 1",
		"mosaic_explain_evidence_total 16",
		"mosaic_explain_near_misses_total 1",
		"# TYPE mosaic_explain_evidence_entries histogram",
		"# TYPE mosaic_explain_near_miss_ratio histogram",
		"# TYPE mosaic_explain_bytes histogram",
		"mosaic_explain_bytes_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// Registering twice against the same registry returns the same
	// instruments (idempotent), so server restarts of subsystems
	// accumulate rather than panic.
	m2 := NewExplainMetrics(reg)
	m2.Explanations.Inc()
	if got := m.Explanations.Value(); got != 2 {
		t.Fatalf("re-registered metrics not shared: %d", got)
	}
}
