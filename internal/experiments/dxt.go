package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"strconv"

	"github.com/mosaic-hpc/mosaic/internal/core"
	"github.com/mosaic-hpc/mosaic/internal/gen"
)

// DXT experiment: quantify the paper's Section IV-A caveat. Blue Waters
// Darshan logs aggregate all activity between a file's open and close, so
// a simulation that checkpoints into files held open for the whole run is
// categorized write_steady — "it is likely that the majority of these
// behaviors are, in fact, periodic". With DXT extended tracing the
// per-operation segments survive and the periodicity is recoverable. This
// experiment generates the same hidden-periodic workload in both tracing
// modes and measures the recall of periodic-write detection.

// DXTResult reports detection rates under the three views.
type DXTResult struct {
	Traces int
	// AggregateRecall: periodic writes detected on aggregate-only traces
	// (expected ~0: the caveat).
	AggregateRecall float64
	// DXTRecall: detected with DXT segments honored (expected ~1).
	DXTRecall float64
	// DXTDisabledRecall: DXT present but ignored via Config.DisableDXT
	// (sanity check: must match AggregateRecall behaviour).
	DXTDisabledRecall float64
	// SteadyRate: fraction of aggregate-only traces categorized
	// write_steady, confirming they land in the category the paper
	// suspects hides periodicity.
	SteadyRate float64
	// MeanPeriodError: relative period error on DXT-detected traces.
	MeanPeriodError float64
}

// DXT runs the experiment on n traces per mode.
func DXT(seed int64, n int, cfg core.Config) (*DXTResult, error) {
	if n < 1 {
		n = 1
	}
	res := &DXTResult{Traces: n}
	aggArch := gen.DXTCheckpointerArchetype(false)
	dxtArch := gen.DXTCheckpointerArchetype(true)
	rng := rand.New(rand.NewSource(seed))

	make1 := func(arch gen.Archetype, i int) (*core.Result, float64, error) {
		p := arch.Params(rng)
		b := gen.NewBuilder(rng, "dxt", arch.Exe, uint64(i+1), p.Ranks, p.RuntimeBase)
		arch.Build(b, p)
		j := b.Job()
		truthPeriod, _ := strconv.ParseFloat(j.Metadata[gen.TruthPeriodKey], 64)
		out, err := core.Categorize(j, cfg)
		return out, truthPeriod, err
	}

	var aggHits, steady int
	for i := 0; i < n; i++ {
		out, _, err := make1(aggArch, i)
		if err != nil {
			return nil, fmt.Errorf("experiments: dxt aggregate trace: %w", err)
		}
		if out.Write.Periodic() {
			aggHits++
		}
		if out.Write.TemporalS == "steady" {
			steady++
		}
	}
	res.AggregateRecall = float64(aggHits) / float64(n)
	res.SteadyRate = float64(steady) / float64(n)

	var dxtHits, disabledHits int
	var periodErrSum float64
	disabledCfg := cfg
	disabledCfg.DisableDXT = true
	for i := 0; i < n; i++ {
		p := dxtArch.Params(rng)
		b := gen.NewBuilder(rng, "dxt", dxtArch.Exe, uint64(1000+i), p.Ranks, p.RuntimeBase)
		dxtArch.Build(b, p)
		j := b.Job()
		truthPeriod, _ := strconv.ParseFloat(j.Metadata[gen.TruthPeriodKey], 64)

		out, err := core.Categorize(j, cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: dxt trace: %w", err)
		}
		if out.Write.Periodic() {
			dxtHits++
			if truthPeriod > 0 {
				periodErrSum += math.Abs(out.Write.DominantPeriod()-truthPeriod) / truthPeriod
			}
		}
		outDis, err := core.Categorize(j, disabledCfg)
		if err != nil {
			return nil, err
		}
		if outDis.Write.Periodic() {
			disabledHits++
		}
	}
	res.DXTRecall = float64(dxtHits) / float64(n)
	res.DXTDisabledRecall = float64(disabledHits) / float64(n)
	if dxtHits > 0 {
		res.MeanPeriodError = periodErrSum / float64(dxtHits)
	}
	return res, nil
}

// Write renders the result.
func (r *DXTResult) Write(w io.Writer) {
	fmt.Fprintf(w, "DXT experiment: hidden periodicity (Section IV-A caveat), %d traces/mode\n", r.Traces)
	fmt.Fprintf(w, "  aggregate-only traces categorized steady      %6.1f%%  (the caveat population)\n", r.SteadyRate*100)
	fmt.Fprintf(w, "  periodic detected, aggregate-only             %6.1f%%  (hidden)\n", r.AggregateRecall*100)
	fmt.Fprintf(w, "  periodic detected, DXT honored                %6.1f%%  (recovered)\n", r.DXTRecall*100)
	fmt.Fprintf(w, "  periodic detected, DXT present but disabled   %6.1f%%  (control)\n", r.DXTDisabledRecall*100)
	fmt.Fprintf(w, "  mean relative period error with DXT           %6.1f%%\n", r.MeanPeriodError*100)
}
