// Package interval provides time-interval algebra used by the MOSAIC
// pre-processing stage: overlap tests, unions, and the two merging
// algorithms of the paper (concurrent-operation merging and neighbor
// merging, Section III-B2).
//
// All times are float64 seconds relative to the start of the job, which
// matches the semantics of Darshan's timing counters.
package interval

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Interval is a half-open time span [Start, End) with an associated byte
// volume and a count of metadata requests (OPEN/CLOSE/SEEK) attributed to
// the operation. Volume and Meta are additive under merging.
type Interval struct {
	Start float64 // seconds since job start
	End   float64 // seconds since job start, End >= Start
	Bytes int64   // bytes moved during the operation
	Meta  int64   // metadata requests attributed to the operation
}

// ErrInvalid reports a malformed interval (NaN, negative duration, ...).
var ErrInvalid = errors.New("interval: invalid interval")

// Duration returns End - Start.
func (iv Interval) Duration() float64 { return iv.End - iv.Start }

// Valid reports whether the interval is well formed: finite bounds,
// non-negative duration, non-negative volume and metadata count.
func (iv Interval) Valid() bool {
	if math.IsNaN(iv.Start) || math.IsNaN(iv.End) {
		return false
	}
	if math.IsInf(iv.Start, 0) || math.IsInf(iv.End, 0) {
		return false
	}
	return iv.End >= iv.Start && iv.Bytes >= 0 && iv.Meta >= 0
}

// Check returns a descriptive error if the interval is not well formed.
func (iv Interval) Check() error {
	if !iv.Valid() {
		return fmt.Errorf("%w: [%g, %g) bytes=%d meta=%d", ErrInvalid, iv.Start, iv.End, iv.Bytes, iv.Meta)
	}
	return nil
}

// Overlaps reports whether two intervals share at least one instant.
// Touching intervals ([0,1) and [1,2)) do not overlap.
func (iv Interval) Overlaps(other Interval) bool {
	return iv.Start < other.End && other.Start < iv.End
}

// Contains reports whether t lies within [Start, End).
func (iv Interval) Contains(t float64) bool { return t >= iv.Start && t < iv.End }

// Gap returns the distance between two disjoint intervals, or 0 when they
// overlap or touch.
func (iv Interval) Gap(other Interval) float64 {
	switch {
	case iv.End <= other.Start:
		return other.Start - iv.End
	case other.End <= iv.Start:
		return iv.Start - other.End
	default:
		return 0
	}
}

// Union returns the smallest interval covering both operands, with volumes
// and metadata counts summed. It is the primitive used by both merging
// algorithms.
func (iv Interval) Union(other Interval) Interval {
	return Interval{
		Start: math.Min(iv.Start, other.Start),
		End:   math.Max(iv.End, other.End),
		Bytes: iv.Bytes + other.Bytes,
		Meta:  iv.Meta + other.Meta,
	}
}

// String implements fmt.Stringer.
func (iv Interval) String() string {
	return fmt.Sprintf("[%.3fs, %.3fs) %dB %dmeta", iv.Start, iv.End, iv.Bytes, iv.Meta)
}

// SortByStart sorts intervals in place by (Start, End).
func SortByStart(ivs []Interval) {
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].Start != ivs[j].Start {
			return ivs[i].Start < ivs[j].Start
		}
		return ivs[i].End < ivs[j].End
	})
}

// TotalBytes sums the byte volume of all intervals.
func TotalBytes(ivs []Interval) int64 {
	var n int64
	for _, iv := range ivs {
		n += iv.Bytes
	}
	return n
}

// TotalMeta sums the metadata requests of all intervals.
func TotalMeta(ivs []Interval) int64 {
	var n int64
	for _, iv := range ivs {
		n += iv.Meta
	}
	return n
}

// BusyTime returns the cumulative duration of all intervals. On merged
// (disjoint) interval sets it equals the time the application spent doing
// I/O, used for the periodic_{low,high}_busy_time categories.
func BusyTime(ivs []Interval) float64 {
	var d float64
	for _, iv := range ivs {
		d += iv.Duration()
	}
	return d
}

// Span returns the interval covering all operations: from the earliest
// start to the latest end. Span of an empty set is the zero Interval.
func Span(ivs []Interval) Interval {
	if len(ivs) == 0 {
		return Interval{}
	}
	sp := Interval{Start: math.Inf(1), End: math.Inf(-1)}
	for _, iv := range ivs {
		sp.Start = math.Min(sp.Start, iv.Start)
		sp.End = math.Max(sp.End, iv.End)
	}
	return sp
}

// MergeConcurrent implements algorithm (2)(a) of the paper: any two
// overlapping operations are fused into one. The result is a sorted set of
// pairwise disjoint intervals whose total volume equals the input's.
//
// This manages rank desynchronization: several processes writing to the
// same file slightly out of step appear as a single logical operation. It
// also declutters the trace so that segmentation sees one event per I/O
// phase. The input slice is not modified.
func MergeConcurrent(ivs []Interval) []Interval {
	if len(ivs) == 0 {
		return nil
	}
	sorted := make([]Interval, len(ivs))
	copy(sorted, ivs)
	SortByStart(sorted)

	out := make([]Interval, 0, len(sorted))
	cur := sorted[0]
	for _, iv := range sorted[1:] {
		if cur.Overlaps(iv) || iv.Start == cur.End {
			// Overlapping (or exactly abutting) operations belong to
			// the same I/O phase.
			cur = cur.Union(iv)
			continue
		}
		out = append(out, cur)
		cur = iv
	}
	return append(out, cur)
}

// NeighborPolicy holds the thresholds of algorithm (2)(b). A gap between
// two consecutive operations is negligible — and the operations are merged
// — when it is shorter than RuntimeFraction of the job runtime OR shorter
// than NeighborFraction of the duration of the adjacent merged operation.
type NeighborPolicy struct {
	RuntimeFraction  float64 // paper default: 0.001 (0.1% of total execution time)
	NeighborFraction float64 // paper default: 0.01  (1% of neighbor merged op duration)
}

// DefaultNeighborPolicy returns the thresholds used in the paper.
func DefaultNeighborPolicy() NeighborPolicy {
	return NeighborPolicy{RuntimeFraction: 0.001, NeighborFraction: 0.01}
}

// MergeNeighbors implements algorithm (2)(b): consecutive operations whose
// separating gap is negligible under the policy are fused. The input must
// be sorted and disjoint (i.e. the output of MergeConcurrent); runtime is
// the total execution time of the job.
//
// Operations that slide slowly out of sync — no longer overlapping but
// still close — are re-attached to the same logical phase here.
func MergeNeighbors(ivs []Interval, runtime float64, p NeighborPolicy) []Interval {
	if len(ivs) == 0 {
		return nil
	}
	out := make([]Interval, 0, len(ivs))
	cur := ivs[0]
	for _, iv := range ivs[1:] {
		gap := cur.Gap(iv)
		if gap <= p.RuntimeFraction*runtime || gap <= p.NeighborFraction*cur.Duration() {
			cur = cur.Union(iv)
			continue
		}
		out = append(out, cur)
		cur = iv
	}
	return append(out, cur)
}

// Merge applies both merging algorithms in order, as the MOSAIC
// pre-processing does: concurrent merging first, then neighbor merging.
func Merge(ivs []Interval, runtime float64, p NeighborPolicy) []Interval {
	return MergeNeighbors(MergeConcurrent(ivs), runtime, p)
}

// Clip restricts every interval to [0, runtime), dropping intervals that
// fall entirely outside. Used to sanitize slightly out-of-range trace
// entries that are not corrupted enough to evict.
func Clip(ivs []Interval, runtime float64) []Interval {
	out := make([]Interval, 0, len(ivs))
	for _, iv := range ivs {
		if iv.End <= 0 || iv.Start >= runtime {
			continue
		}
		if iv.Start < 0 {
			iv.Start = 0
		}
		if iv.End > runtime {
			iv.End = runtime
		}
		out = append(out, iv)
	}
	return out
}

// Disjoint reports whether the (sorted) intervals are pairwise disjoint.
func Disjoint(ivs []Interval) bool {
	for i := 1; i < len(ivs); i++ {
		if ivs[i-1].Overlaps(ivs[i]) {
			return false
		}
	}
	return true
}

// Sorted reports whether the intervals are sorted by (Start, End).
func Sorted(ivs []Interval) bool {
	return sort.SliceIsSorted(ivs, func(i, j int) bool {
		if ivs[i].Start != ivs[j].Start {
			return ivs[i].Start < ivs[j].Start
		}
		return ivs[i].End < ivs[j].End
	})
}
