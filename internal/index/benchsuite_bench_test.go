package index_test

import (
	"testing"

	"github.com/mosaic-hpc/mosaic/internal/benchsuite"
)

// These expose the pinned query-engine benchmarks (BENCH_query.json) to
// plain `go test -bench`. The bodies live in internal/benchsuite so
// `mosaic-bench -bench-json` runs the identical code; this file is in
// the external test package because benchsuite imports index.

// BenchmarkQuery is the posting-list engine over the 1M-trace corpus.
func BenchmarkQuery(b *testing.B) {
	b.Run("point_1m", benchsuite.QueryBench("point", false))
	b.Run("and_heavy_1m", benchsuite.QueryBench("and_heavy", false))
	b.Run("not_heavy_1m", benchsuite.QueryBench("not_heavy", false))
	b.Run("stats_1m", benchsuite.QueryBench("stats", false))
	b.Run("rebuild_20k", benchsuite.QueryRebuild(false))
}

// BenchmarkQueryOracle is the same workload on the map-based reference
// engine — the pre-rewrite evaluation strategy the ≥10× query and ≥3×
// rebuild contracts are measured against.
func BenchmarkQueryOracle(b *testing.B) {
	b.Run("point_1m", benchsuite.QueryBench("point", true))
	b.Run("and_heavy_1m", benchsuite.QueryBench("and_heavy", true))
	b.Run("not_heavy_1m", benchsuite.QueryBench("not_heavy", true))
	b.Run("stats_1m", benchsuite.QueryBench("stats", true))
	b.Run("rebuild_20k", benchsuite.QueryRebuild(true))
}

// BenchmarkMergeSorted is the scatter-gather reduce across k per-peer
// lists: two-pointer below the loser-tree cutover, tree above it.
func BenchmarkMergeSorted(b *testing.B) {
	b.Run("k2", benchsuite.QueryMergeSorted(2))
	b.Run("k8", benchsuite.QueryMergeSorted(8))
	b.Run("k32", benchsuite.QueryMergeSorted(32))
}
