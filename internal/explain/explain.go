// Package explain is MOSAIC's decision-provenance model: a structured
// record of *why* every category was (or was not) assigned to a trace.
//
// A categorization run normally computes Mean Shift clusters, chunk-ratio
// comparisons, merge statistics and threshold crossings — and then throws
// them away, keeping only the labels. When explanation is enabled
// (core.CategorizeExplained, engine Options.Explain, mosaic-serve
// -explain), the detection chain additionally emits an Explanation:
// per-direction preprocessing counts, the temporal chunk volumes and the
// dominance comparisons actually evaluated, every Mean Shift cluster with
// its size/centroid/spread and the reason it was accepted or rejected,
// period-magnitude bucketing, busy-time ratios, and the metadata
// spike/density statistics — each as an Evidence entry stating the rule,
// the operands, the threshold and the pass/fail outcome.
//
// Evidence entries also flag *near-misses*: comparisons whose operand lay
// within a configurable relative margin of the threshold, i.e. rules that
// would flip under a small perturbation of the trace or the
// configuration. Near-miss rates per corpus are exported as telemetry, so
// category-flip-prone workloads are visible on /metrics before a
// threshold change surprises anyone.
//
// The package is a leaf: it depends only on the standard library, so
// every layer (core, engine, store, serve, facade, CLIs) can share the
// model without import cycles.
package explain

import (
	"math"
	"strings"
)

// DefaultMargin is the default near-miss margin: a comparison is a
// near-miss when its operand is within 5% (relative to the threshold) of
// flipping the outcome.
const DefaultMargin = 0.05

// DefaultMaxSegments caps how many per-segment (duration, bytes) features
// an explanation retains per direction.
const DefaultMaxSegments = 64

// Options configures explanation collection.
type Options struct {
	// Margin is the relative near-miss margin (<= 0: DefaultMargin). A
	// rule with threshold T and operand V is near-miss when
	// |V-T| <= Margin*|T|.
	Margin float64
	// MaxSegments caps retained per-segment features per direction
	// (<= 0: DefaultMaxSegments). The cap keeps stored explanations
	// bounded on traces with thousands of merged operations; the
	// SegmentsTruncated flag records when it bit.
	MaxSegments int
}

// Normalized applies defaults.
func (o Options) Normalized() Options {
	if o.Margin <= 0 {
		o.Margin = DefaultMargin
	}
	if o.MaxSegments <= 0 {
		o.MaxSegments = DefaultMaxSegments
	}
	return o
}

// Outcome is the verdict of one rule evaluation.
type Outcome string

// Outcomes.
const (
	Pass Outcome = "pass"
	Fail Outcome = "fail"
)

// Axis names for Evidence entries.
const (
	AxisPreprocess  = "preprocess"
	AxisTemporality = "temporality"
	AxisPeriodicity = "periodicity"
	AxisMetadata    = "metadata"
)

// Evidence is one rule evaluation: the rule's identity, the operand and
// threshold actually compared, the outcome, and whether the comparison
// was within the near-miss margin of flipping. Entries carrying a
// Category are the provenance of that label's assignment (Outcome ==
// Pass) or rejection (Outcome == Fail); entries without a Category are
// intermediate comparisons kept for auditability (e.g. each 2× chunk
// dominance check evaluated).
type Evidence struct {
	Axis      string  `json:"axis"`
	Direction string  `json:"direction,omitempty"` // "read" | "write" | "" (metadata)
	Rule      string  `json:"rule"`
	Category  string  `json:"category,omitempty"`
	Value     float64 `json:"value"`
	Op        string  `json:"op"` // the comparison applied: ">=", ">", "<", "<=", "in"
	Threshold float64 `json:"threshold"`
	Outcome   Outcome `json:"outcome"`
	NearMiss  bool    `json:"near_miss,omitempty"`
	Detail    string  `json:"detail,omitempty"`
}

// Preprocess records the merging funnel of one direction: how many raw
// operations survived clipping, concurrent merging (2a) and neighbor
// merging (2b), and the gap thresholds that drove the neighbor pass.
type Preprocess struct {
	RawOps        int   `json:"raw_ops"`
	ClippedOps    int   `json:"clipped_ops"`
	ConcurrentOps int   `json:"concurrent_ops"` // after concurrent merging (2a)
	MergedOps     int   `json:"merged_ops"`     // after neighbor merging (2b)
	TotalBytes    int64 `json:"total_bytes"`
	// BusySeconds is the cumulative merged I/O time.
	BusySeconds float64 `json:"busy_seconds"`
	// GapRuntimeSeconds is the absolute runtime-fraction gap threshold
	// (MergeRuntimeFraction × runtime) used by neighbor merging.
	GapRuntimeSeconds float64 `json:"gap_runtime_seconds"`
	// NeighborFraction is the relative neighbor-duration gap threshold.
	NeighborFraction float64 `json:"neighbor_fraction"`
	// DXT reports whether the operations came from DXT extended
	// segments instead of aggregate open-to-close windows.
	DXT bool `json:"dxt,omitempty"`
}

// SegmentFeature is one segment's (inter-arrival duration, byte volume)
// pair — the 2D feature Mean Shift clusters.
type SegmentFeature struct {
	Duration float64 `json:"duration"`
	Bytes    int64   `json:"bytes"`
}

// Cluster reasons.
const (
	ClusterAccepted         = "accepted"
	ClusterRejectedSize     = "size below min_group_size"
	ClusterRejectedCoverage = "coverage below min_coverage"
)

// Cluster describes one Mean Shift cluster — accepted or rejected — with
// the statistics the group decision was based on.
type Cluster struct {
	Size int `json:"size"`
	// Period is the mean inter-arrival time of the member segments in
	// seconds (for size-1 clusters, the lone segment's duration).
	Period    float64 `json:"period"`
	MeanBytes float64 `json:"mean_bytes"`
	// CentroidDuration / CentroidVolume are the converged Mean Shift
	// mode in feature space (duration/runtime, log2(1+bytes)/scale).
	CentroidDuration float64 `json:"centroid_duration"`
	CentroidVolume   float64 `json:"centroid_volume"`
	// SpreadDuration / SpreadVolume are the member standard deviations
	// along each feature axis.
	SpreadDuration float64 `json:"spread_duration"`
	SpreadVolume   float64 `json:"spread_volume"`
	// Coverage is the fraction of the runtime spanned by the members.
	Coverage float64 `json:"coverage"`
	Accepted bool    `json:"accepted"`
	// Reason explains acceptance or rejection (see Cluster* constants).
	Reason string `json:"reason"`
}

// Direction is the per-direction evidence of one explanation.
type Direction struct {
	Direction   string     `json:"direction"`
	Significant bool       `json:"significant"`
	Preprocess  Preprocess `json:"preprocess"`
	// Chunks are the per-chunk byte volumes temporality was decided on.
	Chunks []float64 `json:"chunks"`
	// CV is the coefficient of variation of the chunk volumes.
	CV float64 `json:"cv"`
	// Detector names the periodicity algorithm used ("" when the
	// direction was insignificant and periodicity never ran).
	Detector  string  `json:"detector,omitempty"`
	Bandwidth float64 `json:"bandwidth,omitempty"`
	// SegmentCount is the number of segments clustered; Segments holds
	// up to MaxSegments of their features (SegmentsTruncated reports
	// when the cap bit).
	SegmentCount      int              `json:"segment_count,omitempty"`
	Segments          []SegmentFeature `json:"segments,omitempty"`
	SegmentsTruncated bool             `json:"segments_truncated,omitempty"`
	Clusters          []Cluster        `json:"clusters,omitempty"`
	// SpectralPeriod carries the DFT detector's dominant period when
	// the dft or hybrid detector ran (0 otherwise).
	SpectralPeriod float64 `json:"spectral_period,omitempty"`
	// Evidence lists every rule evaluated for this direction.
	Evidence []Evidence `json:"evidence"`
}

// Metadata is the metadata-axis evidence of one explanation.
type Metadata struct {
	TotalOps   int64      `json:"total_ops"`
	PeakRate   float64    `json:"peak_rate"`
	MeanRate   float64    `json:"mean_rate"`
	SpikeCount int        `json:"spike_count"`
	HighSpikes int        `json:"high_spikes"`
	Evidence   []Evidence `json:"evidence"`
}

// Explanation is the complete provenance record of one categorization:
// everything needed to answer "why was (or wasn't) this trace labeled X
// under this configuration".
type Explanation struct {
	JobID   uint64  `json:"job_id"`
	App     string  `json:"app"`
	User    string  `json:"user"`
	Runtime float64 `json:"runtime"`
	// Fingerprint identifies the effective configuration the decisions
	// were made under (core.Config.Fingerprint) — the same key the
	// result store uses, so explanation and result always pair up.
	Fingerprint string `json:"fingerprint"`
	// Margin is the near-miss margin the evidence was collected with.
	Margin float64 `json:"near_miss_margin"`
	// Labels is the assigned category set (mirrors Result.Labels).
	Labels []string   `json:"labels"`
	Read   *Direction `json:"read,omitempty"`
	Write  *Direction `json:"write,omitempty"`
	Meta   *Metadata  `json:"metadata,omitempty"`
}

// NearMiss reports whether value is within margin (relative to the
// threshold) of the threshold — i.e. whether the comparison could flip
// under a small perturbation. A zero threshold compares absolutely
// against the margin itself.
func NearMiss(margin, value, threshold float64) bool {
	if margin <= 0 || math.IsNaN(value) || math.IsInf(value, 0) {
		return false
	}
	t := math.Abs(threshold)
	if t == 0 {
		return math.Abs(value) <= margin
	}
	return math.Abs(value-threshold) <= margin*t
}

// sections iterates the evidence slices of the explanation.
func (e *Explanation) sections() []*[]Evidence {
	var out []*[]Evidence
	if e.Read != nil {
		out = append(out, &e.Read.Evidence)
	}
	if e.Write != nil {
		out = append(out, &e.Write.Evidence)
	}
	if e.Meta != nil {
		out = append(out, &e.Meta.Evidence)
	}
	return out
}

// AllEvidence returns every evidence entry across directions and the
// metadata axis, in collection order (read, write, metadata).
func (e *Explanation) AllEvidence() []Evidence {
	var out []Evidence
	for _, s := range e.sections() {
		out = append(out, *s...)
	}
	return out
}

// EvidenceCount returns the total number of evidence entries.
func (e *Explanation) EvidenceCount() int {
	n := 0
	for _, s := range e.sections() {
		n += len(*s)
	}
	return n
}

// NearMissCount returns how many evidence entries were near-misses.
func (e *Explanation) NearMissCount() int {
	n := 0
	for _, s := range e.sections() {
		for _, ev := range *s {
			if ev.NearMiss {
				n++
			}
		}
	}
	return n
}

// Supporting returns the evidence entries that support the assignment of
// the given category (Category matches, Outcome == Pass). Category-less
// intermediate entries never match, even for an empty argument.
func (e *Explanation) Supporting(category string) []Evidence {
	if category == "" {
		return nil
	}
	var out []Evidence
	for _, ev := range e.AllEvidence() {
		if ev.Category == category && ev.Outcome == Pass {
			out = append(out, ev)
		}
	}
	return out
}

// Against returns the evidence entries recording why the category was
// not assigned (Category matches, Outcome == Fail). Category-less
// intermediate entries never match, even for an empty argument.
func (e *Explanation) Against(category string) []Evidence {
	if category == "" {
		return nil
	}
	var out []Evidence
	for _, ev := range e.AllEvidence() {
		if ev.Category == category && ev.Outcome == Fail {
			out = append(out, ev)
		}
	}
	return out
}

// FilterCategory returns a copy of the explanation whose evidence lists
// keep only entries whose Category contains the given substring
// (case-sensitive, matching the index's bare-term semantics). Structured
// sections (clusters, chunks, preprocess) are preserved; an empty filter
// returns the explanation unchanged.
func (e *Explanation) FilterCategory(substr string) *Explanation {
	if substr == "" {
		return e
	}
	out := *e
	filter := func(evs []Evidence) []Evidence {
		kept := make([]Evidence, 0, len(evs))
		for _, ev := range evs {
			if ev.Category != "" && strings.Contains(ev.Category, substr) {
				kept = append(kept, ev)
			}
		}
		return kept
	}
	if e.Read != nil {
		r := *e.Read
		r.Evidence = filter(e.Read.Evidence)
		out.Read = &r
	}
	if e.Write != nil {
		w := *e.Write
		w.Evidence = filter(e.Write.Evidence)
		out.Write = &w
	}
	if e.Meta != nil {
		m := *e.Meta
		m.Evidence = filter(e.Meta.Evidence)
		out.Meta = &m
	}
	return &out
}
