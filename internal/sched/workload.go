package sched

import (
	"math/rand"

	"github.com/mosaic-hpc/mosaic/internal/core"
)

// Workload construction: turn MOSAIC categorization results into simulated
// jobs, and synthesize mixed workloads for the scheduling experiment.

// FromResult converts a categorized application into a simulator job: the
// per-chunk volumes become alternating compute/I-O phases, and the
// category hints are carried over for the policies.
func FromResult(res *core.Result, id int) *Job {
	j := &Job{ID: id}
	rt := res.Runtime
	chunkDur := rt / float64(maxI(1, len(res.Read.Chunks)))

	// Interleave read and write chunk volumes along the timeline; chunks
	// with negligible I/O become pure compute.
	n := maxI(len(res.Read.Chunks), len(res.Write.Chunks))
	for c := 0; c < n; c++ {
		var bytes float64
		if c < len(res.Read.Chunks) {
			bytes += res.Read.Chunks[c]
		}
		if c < len(res.Write.Chunks) {
			bytes += res.Write.Chunks[c]
		}
		if bytes > 0 {
			j.Phases = append(j.Phases, Phase{Bytes: bytes})
			// Remaining chunk time is computation.
			j.Phases = append(j.Phases, Phase{Compute: chunkDur * 0.5})
		} else {
			j.Phases = append(j.Phases, Phase{Compute: chunkDur})
		}
	}
	j.ReadOnStart = res.Read.TemporalS == "on_start"
	j.PeriodicWrite = res.Write.Periodic()
	j.Period = res.Write.DominantPeriod()
	return j
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// WorkloadSpec sizes a synthetic scheduling workload.
type WorkloadSpec struct {
	StartReaders  int     // jobs reading a large input at launch
	Checkpointers int     // periodic writers
	ComputeOnly   int     // jobs with negligible I/O
	ReadBytes     float64 // input size per start-reader
	CkptBytes     float64 // bytes per checkpoint
	CkptPeriod    float64 // seconds between checkpoints
	ComputeTime   float64 // compute time per job, seconds
}

// DefaultWorkloadSpec returns a contended mixture: several heavy
// start-readers fighting for the PFS at launch plus background
// checkpointers.
func DefaultWorkloadSpec() WorkloadSpec {
	return WorkloadSpec{
		StartReaders:  6,
		Checkpointers: 4,
		ComputeOnly:   6,
		ReadBytes:     400e9, // 400 GB input each
		CkptBytes:     50e9,
		CkptPeriod:    600,
		ComputeTime:   3600,
	}
}

// BuildWorkload synthesizes the jobs of a spec with mild jitter.
func BuildWorkload(spec WorkloadSpec, rng *rand.Rand) []*Job {
	var jobs []*Job
	id := 0
	jit := func(v float64) float64 { return v * (0.9 + rng.Float64()*0.2) }

	for i := 0; i < spec.StartReaders; i++ {
		jobs = append(jobs, &Job{
			ID: id,
			Phases: []Phase{
				{Bytes: jit(spec.ReadBytes)},
				{Compute: jit(spec.ComputeTime)},
			},
			ReadOnStart: true,
		})
		id++
	}
	for i := 0; i < spec.Checkpointers; i++ {
		j := &Job{ID: id, PeriodicWrite: true, Period: spec.CkptPeriod}
		total := jit(spec.ComputeTime)
		for t := 0.0; t < total; t += spec.CkptPeriod {
			j.Phases = append(j.Phases,
				Phase{Compute: spec.CkptPeriod * 0.95},
				Phase{Bytes: jit(spec.CkptBytes)},
			)
		}
		jobs = append(jobs, j)
		id++
	}
	for i := 0; i < spec.ComputeOnly; i++ {
		jobs = append(jobs, &Job{
			ID:     id,
			Phases: []Phase{{Compute: jit(spec.ComputeTime)}},
		})
		id++
	}
	return jobs
}

// Comparison holds the FCFS vs category-aware results for one workload.
type Comparison struct {
	FCFS  Metrics
	Aware Metrics
	// StallReduction is 1 - aware.Stall/fcfs.Stall (0 when FCFS has none).
	StallReduction float64
	// SlowdownReduction compares mean slowdowns the same way.
	SlowdownReduction float64
}

// Compare runs both policies on the same workload and platform. stagger
// is the release offset the aware policy uses between start-readers.
func Compare(jobs []*Job, cfg Config, stagger float64) (Comparison, error) {
	fcfs, err := Simulate(jobs, cfg, FCFS(jobs))
	if err != nil {
		return Comparison{}, err
	}
	aware, err := Simulate(jobs, cfg, CategoryAware(jobs, stagger))
	if err != nil {
		return Comparison{}, err
	}
	cmp := Comparison{FCFS: fcfs, Aware: aware}
	if fcfs.StallTime > 0 {
		cmp.StallReduction = 1 - aware.StallTime/fcfs.StallTime
	}
	if fcfs.MeanSlowdown > 0 {
		cmp.SlowdownReduction = 1 - aware.MeanSlowdown/fcfs.MeanSlowdown
	}
	return cmp, nil
}
