package telemetry

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

func TestParseLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo, "": slog.LevelInfo,
		"warn": slog.LevelWarn, "warning": slog.LevelWarn, "ERROR": slog.LevelError,
	}
	for in, want := range cases {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("unknown level accepted")
	}
}

func TestNewLoggerFormats(t *testing.T) {
	var buf bytes.Buffer
	log, err := NewLogger(&buf, "info", "json")
	if err != nil {
		t.Fatal(err)
	}
	log.Info("hello", "k", "v")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("json handler emitted invalid JSON: %v (%s)", err, buf.String())
	}
	if rec["msg"] != "hello" || rec["k"] != "v" {
		t.Fatalf("unexpected record: %v", rec)
	}

	buf.Reset()
	log, err = NewLogger(&buf, "warn", "text")
	if err != nil {
		t.Fatal(err)
	}
	log.Info("suppressed")
	log.Warn("kept")
	out := buf.String()
	if strings.Contains(out, "suppressed") || !strings.Contains(out, "kept") {
		t.Fatalf("level filtering broken: %q", out)
	}

	if _, err := NewLogger(&buf, "info", "yaml"); err == nil {
		t.Fatal("unknown format accepted")
	}
}
