package mosaic

import (
	"math/rand"

	"github.com/mosaic-hpc/mosaic/internal/sched"
)

// I/O-aware scheduling simulation, re-exported: the Section V application
// of the paper. Convert categorization results into simulated jobs, then
// compare FCFS against a category-aware policy that staggers heavy
// start-readers and interleaves periodic checkpointers.
type (
	// SchedJob is one simulated application.
	SchedJob = sched.Job
	// SchedPhase is one compute or I/O step of a job.
	SchedPhase = sched.Phase
	// SchedConfig describes the simulated platform.
	SchedConfig = sched.Config
	// SchedMetrics summarizes one simulation.
	SchedMetrics = sched.Metrics
	// SchedOrder is a start schedule produced by a policy.
	SchedOrder = sched.Order
	// SchedComparison holds FCFS vs category-aware results.
	SchedComparison = sched.Comparison
	// SchedWorkloadSpec sizes a synthetic scheduling workload.
	SchedWorkloadSpec = sched.WorkloadSpec
)

// SchedJobFromResult converts a categorization result into a simulator
// job carrying the category hints.
func SchedJobFromResult(res *Result, id int) *SchedJob { return sched.FromResult(res, id) }

// Simulate runs jobs through the platform under the given order.
func Simulate(jobs []*SchedJob, cfg SchedConfig, order SchedOrder) (SchedMetrics, error) {
	return sched.Simulate(jobs, cfg, order)
}

// ScheduleFCFS is the first-come-first-served baseline policy.
func ScheduleFCFS(jobs []*SchedJob) SchedOrder { return sched.FCFS(jobs) }

// ScheduleCategoryAware builds a schedule from MOSAIC category hints.
func ScheduleCategoryAware(jobs []*SchedJob, stagger float64) SchedOrder {
	return sched.CategoryAware(jobs, stagger)
}

// CompareSchedules runs both policies on the same workload.
func CompareSchedules(jobs []*SchedJob, cfg SchedConfig, stagger float64) (SchedComparison, error) {
	return sched.Compare(jobs, cfg, stagger)
}

// BuildSchedWorkload synthesizes a contended workload from a spec.
func BuildSchedWorkload(spec SchedWorkloadSpec, rng *rand.Rand) []*SchedJob {
	return sched.BuildWorkload(spec, rng)
}

// DefaultSchedWorkloadSpec returns the default contended mixture.
func DefaultSchedWorkloadSpec() SchedWorkloadSpec { return sched.DefaultWorkloadSpec() }
