package mosaic

import (
	"github.com/mosaic-hpc/mosaic/internal/engine"
	"github.com/mosaic-hpc/mosaic/internal/store"
)

// Result store, re-exported. The store gives corpus analysis a durable
// memory: traces are content-addressed (SHA-256 of their canonical
// binary encoding) and results are keyed by (trace address, Config
// fingerprint), so a repeat run over an unchanged corpus under
// unchanged thresholds skips categorization entirely — the warm-start
// path of cmd/mosaic -store, and the backbone of mosaic-serve.
type (
	// Store is the durable content-addressed trace/result store.
	Store = store.Store
	// StoreOptions tunes segment size, read-cache budget and fsync.
	StoreOptions = store.Options
	// StoreStats is a point-in-time view of store contents and cache
	// effectiveness.
	StoreStats = store.Stats
	// TraceID is the content address of a trace (SHA-256 hex digest).
	TraceID = store.TraceID
	// CachingExecutor wraps an Executor with store lookup/write-back;
	// Options.Store installs one automatically.
	CachingExecutor = store.CachingExecutor
)

// OpenStore opens (or creates) a result store rooted at dir with
// default options. The store recovers crash-torn segment tails
// automatically; Close it when done.
func OpenStore(dir string) (*Store, error) { return store.Open(dir, store.Options{}) }

// OpenStoreOptions is OpenStore with explicit tuning.
func OpenStoreOptions(dir string, o StoreOptions) (*Store, error) { return store.Open(dir, o) }

// TraceKey computes the content address of a trace (and its canonical
// binary encoding) without storing it.
func TraceKey(j *Job) (TraceID, []byte, error) { return store.TraceKey(j) }

// cachingExecutor wraps the pipeline's effective executor with the
// store. Worker defaulting mirrors the engine: an explicit Executor
// keeps its own concurrency, otherwise Local{Workers} is used.
func cachingExecutor(s *store.Store, inner engine.Executor, workers int) *store.CachingExecutor {
	if inner == nil {
		inner = engine.Local{Workers: workers}
	}
	return store.NewCachingExecutor(s, inner)
}
