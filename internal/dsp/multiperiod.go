package dsp

import (
	"math"

	"github.com/mosaic-hpc/mosaic/internal/interval"
)

// Iterative spectral peeling: a stronger frequency-domain detector that
// tries to recover several interleaved periodicities by repeatedly
// detecting the dominant peak and subtracting its harmonic comb from the
// spectrum. It narrows — but does not close — the gap to the
// segmentation detector on mixed workloads: overlapping harmonics of
// near-commensurate periods still confuse it, and it cannot attribute
// volumes to operations. The ablation bench includes it as "dft-iter".

// MultiDetection is the outcome of iterative detection.
type MultiDetection struct {
	Periods     []float64 // detected periods, strongest first
	Confidences []float64 // dominance ratio of each accepted peak
}

// Periodic reports whether at least one period was found.
func (m MultiDetection) Periodic() bool { return len(m.Periods) > 0 }

// DetectMultiplePeriodicities peels up to maxPeriods dominant spectral
// peaks. After accepting a peak, the peak bin and its integer harmonics
// (and sub-harmonics) are zeroed before searching again; a candidate that
// is a harmonic of an accepted period (within 15%) is skipped rather than
// reported twice.
func DetectMultiplePeriodicities(ops []interval.Interval, runtime float64, maxPeriods int, cfg DetectorConfig) MultiDetection {
	cfg = cfg.withDefaults()
	if maxPeriods < 1 {
		maxPeriods = 2
	}
	var out MultiDetection
	if runtime <= 0 || len(ops) < 2 {
		return out
	}
	signal := Binned(ops, runtime, cfg.Bins)
	sampleRate := float64(cfg.Bins) / runtime
	power, freq := Periodogram(signal, sampleRate)
	if len(power) < 3 {
		return out
	}
	work := append([]float64(nil), power...)

	for len(out.Periods) < maxPeriods {
		// Dominant remaining peak (skip DC).
		peakK, peakP := 0, 0.0
		var total float64
		live := 0
		for k := 1; k < len(work); k++ {
			if work[k] <= 0 {
				continue
			}
			total += work[k]
			live++
			if work[k] > peakP {
				peakK, peakP = k, work[k]
			}
		}
		if peakK == 0 || live < 3 {
			break
		}
		meanRest := (total - peakP) / float64(live-1)
		confidence := math.Inf(1)
		if meanRest > 0 {
			confidence = peakP / meanRest
		}
		period := 1 / freq[peakK]
		if confidence < cfg.MinConfidence || runtime/period < cfg.MinCycles {
			break
		}
		if !isHarmonicOfAny(period, out.Periods, 0.15) {
			out.Periods = append(out.Periods, period)
			out.Confidences = append(out.Confidences, confidence)
		}
		// Peel the peak's harmonic comb: k, 2k, 3k, ... and k/2, k/3
		// with a +-2 bin guard band against spectral leakage.
		zero := func(k int) {
			for d := -2; d <= 2; d++ {
				if i := k + d; i >= 1 && i < len(work) {
					work[i] = 0
				}
			}
		}
		for m := 1; m*peakK < len(work); m++ {
			zero(m * peakK)
		}
		for d := 2; peakK/d >= 1; d++ {
			zero(peakK / d)
		}
	}
	return out
}

func isHarmonicOfAny(p float64, accepted []float64, tol float64) bool {
	for _, a := range accepted {
		for _, m := range []float64{1, 2, 3, 0.5, 1.0 / 3} {
			ref := a * m
			if ref > 0 && math.Abs(p-ref)/ref <= tol {
				return true
			}
		}
	}
	return false
}
