package store

import "bytes"

// scanCategories extracts the top-level "categories" string array from a
// JSON result document without decoding anything else: every other value
// is skipped structurally (strings escape-aware, objects and arrays by
// bracket depth), so the rebuild scan pays for the one field it keeps
// rather than the whole document. Labels append to dst.
//
// The scanner handles exactly the shape (*Store).PutResult writes —
// compact encoding/json output. ok is false on anything it does not
// understand (malformed input, escape sequences in a key or label);
// the caller falls back to a full encoding/json decode, so the fast
// path never has to be clever about rare inputs, only honest.
func scanCategories(doc []byte, dst []string) (_ []string, ok bool) {
	p := jsonScan{b: doc}
	p.ws()
	if !p.eat('{') {
		return dst, false
	}
	p.ws()
	if p.eat('}') {
		return dst, true
	}
	for {
		key, esc, ok := p.rawString()
		if !ok || esc {
			return dst, false
		}
		p.ws()
		if !p.eat(':') {
			return dst, false
		}
		p.ws()
		if string(key) == "categories" {
			if dst, ok = p.stringArray(dst); !ok {
				return dst, false
			}
		} else if !p.skipValue() {
			return dst, false
		}
		p.ws()
		if p.eat(',') {
			p.ws()
			continue
		}
		if p.eat('}') {
			return dst, true
		}
		return dst, false
	}
}

// jsonScan is a minimal forward-only JSON cursor.
type jsonScan struct {
	b []byte
	i int
}

func (p *jsonScan) ws() {
	for p.i < len(p.b) {
		switch p.b[p.i] {
		case ' ', '\t', '\n', '\r':
			p.i++
		default:
			return
		}
	}
}

func (p *jsonScan) eat(c byte) bool {
	if p.i < len(p.b) && p.b[p.i] == c {
		p.i++
		return true
	}
	return false
}

// rawString scans a JSON string literal, returning the raw bytes between
// the quotes. esc reports whether an escape sequence was present — the
// raw bytes are then not the decoded value and callers needing one must
// fall back.
func (p *jsonScan) rawString() (raw []byte, esc, ok bool) {
	if !p.eat('"') {
		return nil, false, false
	}
	start := p.i
	for p.i < len(p.b) {
		switch p.b[p.i] {
		case '\\':
			esc = true
			p.i += 2
		case '"':
			raw = p.b[start:p.i]
			p.i++
			return raw, esc, true
		default:
			p.i++
		}
	}
	return nil, false, false
}

// skipValue advances past one JSON value of any type.
func (p *jsonScan) skipValue() bool {
	p.ws()
	if p.i >= len(p.b) {
		return false
	}
	switch c := p.b[p.i]; c {
	case '"':
		_, _, ok := p.rawString()
		return ok
	case '{', '[':
		depth := 0
		for p.i < len(p.b) {
			switch p.b[p.i] {
			case '"':
				if _, _, ok := p.rawString(); !ok {
					return false
				}
				continue // rawString already advanced past the literal
			case '{', '[':
				depth++
			case '}', ']':
				depth--
				if depth == 0 {
					p.i++
					return true
				}
			}
			p.i++
		}
		return false
	default:
		// Number, true, false or null: scan to the next delimiter.
		for p.i < len(p.b) {
			switch p.b[p.i] {
			case ',', '}', ']', ' ', '\t', '\n', '\r':
				return true
			}
			p.i++
		}
		return false
	}
}

// stringArray decodes a JSON array of plain strings, appending to dst.
// null (a marshaled nil slice) is accepted as empty.
func (p *jsonScan) stringArray(dst []string) ([]string, bool) {
	p.ws()
	if bytes.HasPrefix(p.b[p.i:], []byte("null")) {
		p.i += len("null")
		return dst, true
	}
	if !p.eat('[') {
		return dst, false
	}
	p.ws()
	if p.eat(']') {
		return dst, true
	}
	for {
		p.ws()
		raw, esc, ok := p.rawString()
		if !ok || esc {
			return dst, false
		}
		dst = append(dst, string(raw))
		p.ws()
		if p.eat(',') {
			continue
		}
		if p.eat(']') {
			return dst, true
		}
		return dst, false
	}
}
