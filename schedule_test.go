package mosaic_test

import (
	"math/rand"
	"testing"

	"github.com/mosaic-hpc/mosaic"
)

func TestScheduleFacadeEndToEnd(t *testing.T) {
	// Categorize real traces, convert them to simulator jobs, and verify
	// the category-aware schedule reduces contention — the full loop from
	// trace to scheduling decision through the public API.
	profile := mosaic.DefaultCorpusProfile()
	profile.Apps = 40
	profile.Seed = 21
	profile.CorruptionRate = 0
	corpus := mosaic.PlanCorpus(profile)

	var jobs []*mosaic.SchedJob
	var readers int
	corpus.Each(func(r mosaic.CorpusRun) bool {
		res, err := mosaic.Categorize(r.Job, mosaic.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		j := mosaic.SchedJobFromResult(res, len(jobs))
		if j.ReadOnStart {
			readers++
		}
		jobs = append(jobs, j)
		return len(jobs) < 60
	})
	if readers == 0 {
		t.Fatal("no start-readers in sample; scheduling test vacuous")
	}

	cfg := mosaic.SchedConfig{Slots: 64, PFSBandwidth: 20e9, JobBandwidth: 10e9}
	fcfs, err := mosaic.Simulate(jobs, cfg, mosaic.ScheduleFCFS(jobs))
	if err != nil {
		t.Fatal(err)
	}
	aware, err := mosaic.Simulate(jobs, cfg, mosaic.ScheduleCategoryAware(jobs, 60))
	if err != nil {
		t.Fatal(err)
	}
	if aware.StallTime > fcfs.StallTime {
		t.Fatalf("category-aware stall %.0fs worse than FCFS %.0fs", aware.StallTime, fcfs.StallTime)
	}
}

func TestScheduleFacadeWorkloadBuilder(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	spec := mosaic.DefaultSchedWorkloadSpec()
	jobs := mosaic.BuildSchedWorkload(spec, rng)
	want := spec.StartReaders + spec.Checkpointers + spec.ComputeOnly
	if len(jobs) != want {
		t.Fatalf("jobs = %d, want %d", len(jobs), want)
	}
	cfg := mosaic.SchedConfig{Slots: 32, PFSBandwidth: 20e9, JobBandwidth: 10e9}
	cmp, err := mosaic.CompareSchedules(jobs, cfg, spec.ReadBytes/cfg.JobBandwidth)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.StallReduction <= 0 {
		t.Fatalf("stall reduction = %g", cmp.StallReduction)
	}
}
