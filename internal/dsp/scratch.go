package dsp

import (
	"math/cmplx"
	"sync"

	"github.com/mosaic-hpc/mosaic/internal/interval"
)

// Allocation-lean variants of the detector hot path. The exported
// Binned/Periodogram/Autocorrelation keep their allocating semantics
// (fresh slices every call); DetectPeriodicity and
// DetectByAutocorrelation route through the *Into variants below with a
// pooled scratch so that repeated detections — one or two per trace, across
// every corpus worker — reuse the binned signal, FFT, and spectrum buffers
// instead of reallocating them.

// detectorScratch bundles the reusable buffers of one detection. Not safe
// for concurrent use; the pool hands each goroutine its own.
type detectorScratch struct {
	sig   []float64    // binned byte-rate signal
	power []float64    // periodogram / autocorrelation output
	freq  []float64    // periodogram frequency axis
	cx    []complex128 // FFT working buffer
}

var detectorPool = sync.Pool{New: func() any { return new(detectorScratch) }}

// growS resizes *buf to length n, reusing capacity when possible. The
// returned slice contents are unspecified; callers overwrite or clear.
func growS(buf *[]float64, n int) []float64 {
	if cap(*buf) >= n {
		*buf = (*buf)[:n]
	} else {
		*buf = make([]float64, n, n+n/2)
	}
	return *buf
}

func growCx(buf *[]complex128, n int) []complex128 {
	if cap(*buf) >= n {
		*buf = (*buf)[:n]
	} else {
		*buf = make([]complex128, n, n+n/2)
	}
	return *buf
}

// binnedInto rasterizes ops into sig (which defines the bin count),
// clearing it first. Same math as Binned.
func binnedInto(sig []float64, ops []interval.Interval, runtime float64) {
	clear(sig)
	bins := len(sig)
	if runtime <= 0 || bins <= 0 {
		return
	}
	binW := runtime / float64(bins)
	for _, op := range ops {
		lo := int(op.Start / binW)
		hi := int(op.End / binW)
		if hi >= bins {
			hi = bins - 1
		}
		if lo < 0 {
			lo = 0
		}
		if lo > hi {
			continue
		}
		share := float64(op.Bytes) / float64(hi-lo+1)
		for b := lo; b <= hi; b++ {
			sig[b] += share
		}
	}
}

// periodogramInto computes the one-sided power spectrum of signal into the
// scratch buffers and returns views of them. Same math as Periodogram; the
// returned slices are owned by sc and invalidated by the next call.
func periodogramInto(signal []float64, sampleRate float64, sc *detectorScratch) (power, freq []float64) {
	if len(signal) == 0 {
		return nil, nil
	}
	mean := 0.0
	for _, v := range signal {
		mean += v
	}
	mean /= float64(len(signal))
	n := NextPowerOfTwo(len(signal))
	x := growCx(&sc.cx, n)
	clear(x)
	for i, v := range signal {
		x[i] = complex(v-mean, 0)
	}
	// Length is a power of two by construction; FFT cannot fail.
	_ = FFT(x)
	half := n/2 + 1
	power = growS(&sc.power, half)
	freq = growS(&sc.freq, half)
	for k := 0; k < half; k++ {
		re, im := real(x[k]), imag(x[k])
		power[k] = (re*re + im*im) / float64(n)
		freq[k] = float64(k) * sampleRate / float64(n)
	}
	return power, freq
}

// autocorrInto computes the normalized autocorrelation of signal for lags
// 0..maxLag into the scratch and returns a view of it. Same math as
// Autocorrelation; the returned slice is owned by sc.
func autocorrInto(signal []float64, maxLag int, sc *detectorScratch) []float64 {
	n := len(signal)
	if n == 0 || maxLag < 0 {
		return nil
	}
	if maxLag >= n {
		maxLag = n - 1
	}
	mean := 0.0
	for _, v := range signal {
		mean += v
	}
	mean /= float64(n)
	// Zero-pad to 2n to avoid circular correlation.
	size := NextPowerOfTwo(2 * n)
	x := growCx(&sc.cx, size)
	clear(x)
	for i, v := range signal {
		x[i] = complex(v-mean, 0)
	}
	_ = FFT(x)
	for i := range x {
		x[i] *= cmplx.Conj(x[i])
	}
	_ = IFFT(x)
	out := growS(&sc.power, maxLag+1)
	clear(out)
	variance := real(x[0])
	if variance <= 0 {
		return out
	}
	for lag := 0; lag <= maxLag; lag++ {
		out[lag] = real(x[lag]) / variance
	}
	return out
}
