package darshan

import (
	"fmt"
	"math"

	"github.com/mosaic-hpc/mosaic/internal/interval"
)

// DXT (Darshan eXtended Tracing) support. The Blue Waters corpus was
// collected with DXT disabled, which is why the paper's traces aggregate
// all activity between a file's open and close — and why MOSAIC must
// categorize an application that keeps files open while checkpointing as
// "steady" even though it is periodic (Section IV-A). When DXT is
// available, each record additionally carries the individual read/write
// segments, and the hidden periodicity becomes detectable. This file
// models DXT segments; the dxt experiment quantifies the caveat.

// DXTEvent is one traced I/O segment: a single read or write with its
// file offset and length, timed individually.
type DXTEvent struct {
	Start  float64 // seconds since job start
	End    float64 // seconds since job start
	Offset int64   // file offset in bytes
	Length int64   // transfer size in bytes
}

// Valid reports whether the event is well formed.
func (e DXTEvent) Valid() bool {
	if math.IsNaN(e.Start) || math.IsNaN(e.End) || math.IsInf(e.Start, 0) || math.IsInf(e.End, 0) {
		return false
	}
	return e.End >= e.Start && e.Start >= 0 && e.Offset >= 0 && e.Length >= 0
}

// HasDXT reports whether the record carries extended tracing data.
func (r *FileRecord) HasDXT() bool { return len(r.DXTReads) > 0 || len(r.DXTWrites) > 0 }

// dxtIntervals converts DXT events into operation intervals; metadata
// requests stay attributed to the record's open/close, so per-event
// intervals carry none.
func dxtIntervals(events []DXTEvent) []interval.Interval {
	out := make([]interval.Interval, 0, len(events))
	for _, e := range events {
		out = append(out, interval.Interval{Start: e.Start, End: e.End, Bytes: e.Length})
	}
	return out
}

// ReadIntervalsDXT extracts read operations preferring DXT segments where
// present: records with extended tracing contribute one interval per
// traced read, others fall back to the aggregate window.
func (j *Job) ReadIntervalsDXT() []interval.Interval {
	out := make([]interval.Interval, 0, len(j.Records))
	for i := range j.Records {
		r := &j.Records[i]
		if len(r.DXTReads) > 0 {
			out = append(out, dxtIntervals(r.DXTReads)...)
			// Metadata attribution: keep one zero-length carrier so the
			// open/seek requests are not lost to the merge totals.
			if m := r.C.Opens + r.C.Seeks; m > 0 {
				out = append(out, interval.Interval{Start: r.C.OpenStart, End: r.C.OpenStart, Meta: m})
			}
			continue
		}
		if !r.C.HasRead() {
			continue
		}
		out = append(out, interval.Interval{
			Start: r.C.ReadStart, End: r.C.ReadEnd,
			Bytes: r.C.BytesRead, Meta: r.C.Opens + r.C.Seeks,
		})
	}
	return out
}

// WriteIntervalsDXT is the write-side counterpart of ReadIntervalsDXT.
func (j *Job) WriteIntervalsDXT() []interval.Interval {
	out := make([]interval.Interval, 0, len(j.Records))
	for i := range j.Records {
		r := &j.Records[i]
		if len(r.DXTWrites) > 0 {
			out = append(out, dxtIntervals(r.DXTWrites)...)
			if m := r.C.Opens + r.C.Seeks; m > 0 {
				out = append(out, interval.Interval{Start: r.C.OpenStart, End: r.C.OpenStart, Meta: m})
			}
			continue
		}
		if !r.C.HasWrite() {
			continue
		}
		out = append(out, interval.Interval{
			Start: r.C.WriteStart, End: r.C.WriteEnd,
			Bytes: r.C.BytesWritten, Meta: r.C.Opens + r.C.Seeks,
		})
	}
	return out
}

// HasDXT reports whether any record of the job carries extended tracing.
func (j *Job) HasDXT() bool {
	for i := range j.Records {
		if j.Records[i].HasDXT() {
			return true
		}
	}
	return false
}

// validateDXT checks the extended events of a record. Called from
// validateRecord.
func validateDXT(r *FileRecord, idx int, runtime float64) error {
	check := func(events []DXTEvent, kind string) error {
		var sum int64
		for k, e := range events {
			if !e.Valid() {
				return corrupt(CorruptBadTimestamps, idx, "DXT %s event %d malformed", kind, k)
			}
			if e.End > runtime+tsSlack {
				return corrupt(CorruptAfterEnd, idx, "DXT %s event %d ends at %g, runtime %g", kind, k, e.End, runtime)
			}
			sum += e.Length
		}
		return nil
	}
	if err := check(r.DXTReads, "read"); err != nil {
		return err
	}
	return check(r.DXTWrites, "write")
}

// DXTSummary aggregates DXT events back into the classic counters; used
// by tests to assert consistency between the two views of a record.
func DXTSummary(events []DXTEvent) (bytes int64, span interval.Interval) {
	if len(events) == 0 {
		return 0, interval.Interval{}
	}
	span = interval.Interval{Start: math.Inf(1), End: math.Inf(-1)}
	for _, e := range events {
		bytes += e.Length
		if e.Start < span.Start {
			span.Start = e.Start
		}
		if e.End > span.End {
			span.End = e.End
		}
	}
	return bytes, span
}

// String implements fmt.Stringer.
func (e DXTEvent) String() string {
	return fmt.Sprintf("[%.3f, %.3f) off=%d len=%d", e.Start, e.End, e.Offset, e.Length)
}
