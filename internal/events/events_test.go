package events

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"testing"
)

func TestEmitAssignsMonotonicSeqs(t *testing.T) {
	l := NewLog(Config{Capacity: 8, Node: "n1"})
	for i := 0; i < 5; i++ {
		ev := l.Emit(SevInfo, TypeNodeUp, "peer up", "peer", fmt.Sprintf("p%d", i))
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d got seq %d", i, ev.Seq)
		}
		if ev.Node != "n1" {
			t.Fatalf("node not stamped: %+v", ev)
		}
	}
	if l.LastSeq() != 5 {
		t.Fatalf("LastSeq = %d, want 5", l.LastSeq())
	}
}

func TestRingEvictionAndEarliest(t *testing.T) {
	l := NewLog(Config{Capacity: 4})
	for i := 0; i < 10; i++ {
		l.Emit(SevInfo, TypeBackpressure, "x")
	}
	p := l.Since(0, SevInfo, 0)
	if len(p.Events) != 4 {
		t.Fatalf("retained %d events, want 4", len(p.Events))
	}
	if p.Earliest != 7 || p.Last != 10 {
		t.Fatalf("earliest/last = %d/%d, want 7/10", p.Earliest, p.Last)
	}
	for i, ev := range p.Events {
		if ev.Seq != uint64(7+i) {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}
}

func TestSincePaginationAndSeverityFilter(t *testing.T) {
	l := NewLog(Config{Capacity: 64})
	for i := 0; i < 9; i++ {
		sev := Severity(i % 3)
		l.Emit(sev, TypeDegradedAck, "m")
	}
	// Cursor-based pagination walks every event exactly once.
	var got []uint64
	cursor := uint64(0)
	for {
		p := l.Since(cursor, SevInfo, 2)
		if len(p.Events) == 0 {
			break
		}
		for _, ev := range p.Events {
			got = append(got, ev.Seq)
		}
		cursor = p.Events[len(p.Events)-1].Seq
	}
	if len(got) != 9 {
		t.Fatalf("paginated %d events, want 9: %v", len(got), got)
	}
	for i, seq := range got {
		if seq != uint64(i+1) {
			t.Fatalf("pagination out of order: %v", got)
		}
	}

	warns := l.Since(0, SevWarn, 0)
	if len(warns.Events) != 6 {
		t.Fatalf("severity>=warn returned %d, want 6", len(warns.Events))
	}
	errs := l.Since(0, SevError, 0)
	if len(errs.Events) != 3 {
		t.Fatalf("severity>=error returned %d, want 3", len(errs.Events))
	}
}

func TestSlogMirroring(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, &slog.HandlerOptions{Level: slog.LevelWarn}))
	l := NewLog(Config{Capacity: 8, Logger: logger})
	l.Emit(SevInfo, TypeNodeUp, "quiet") // below handler level
	l.Emit(SevWarn, TypeNodeDown, "peer down", "peer", "b")

	out := buf.String()
	if bytes.Contains(buf.Bytes(), []byte("quiet")) {
		t.Fatalf("info event leaked through warn-level handler: %s", out)
	}
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("mirror output not JSON: %v\n%s", err, out)
	}
	if rec["event"] != TypeNodeDown || rec["peer"] != "b" || rec["level"] != "WARN" {
		t.Fatalf("mirror record missing fields: %v", rec)
	}
}

type memSink struct {
	mu   sync.Mutex
	recs [][]byte
	fail bool
}

func (m *memSink) AppendRecord(b []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.fail {
		return errors.New("sink down")
	}
	m.recs = append(m.recs, append([]byte(nil), b...))
	return nil
}

func TestSinkPersistenceAndBacklogResume(t *testing.T) {
	sink := &memSink{}
	l := NewLog(Config{Capacity: 8, Node: "a", Sink: sink})
	l.Emit(SevWarn, TypeHintDropped, "dropped", "peer", "b")
	l.Emit(SevInfo, TypeHintReplayed, "replayed", "peer", "b")

	backlog := DecodeBacklog(sink.recs, 8)
	if len(backlog) != 2 {
		t.Fatalf("decoded %d backlog events, want 2", len(backlog))
	}
	if backlog[0].Type != TypeHintDropped || backlog[0].Severity != SevWarn {
		t.Fatalf("backlog round-trip mangled event: %+v", backlog[0])
	}

	// A journal seeded with the backlog resumes numbering after it.
	l2 := NewLog(Config{Capacity: 8, Backlog: backlog})
	ev := l2.Emit(SevInfo, TypeNodeUp, "fresh")
	if ev.Seq != 3 {
		t.Fatalf("resumed seq = %d, want 3", ev.Seq)
	}
	p := l2.Since(0, SevInfo, 0)
	if len(p.Events) != 3 || p.Events[0].Seq != 1 {
		t.Fatalf("backlog not retained: %+v", p)
	}
}

func TestSinkErrorsCountedNotFatal(t *testing.T) {
	sink := &memSink{fail: true}
	l := NewLog(Config{Capacity: 8, Sink: sink})
	l.Emit(SevInfo, TypeNodeUp, "x")
	l.Emit(SevInfo, TypeNodeUp, "y")
	if l.SinkErrors() != 2 {
		t.Fatalf("SinkErrors = %d, want 2", l.SinkErrors())
	}
	if l.LastSeq() != 2 {
		t.Fatalf("emission blocked by sink failure")
	}
}

func TestDecodeBacklogSkipsGarbageAndTrims(t *testing.T) {
	recs := [][]byte{
		[]byte(`{"seq":1,"type":"node_up","severity":"info","message":"a"}`),
		[]byte(`not json`),
		[]byte(`{"seq":2,"type":"node_down","severity":"warn","message":"b"}`),
		[]byte(`{"seq":3,"type":"node_up","severity":"info","message":"c"}`),
	}
	got := DecodeBacklog(recs, 2)
	if len(got) != 2 || got[0].Seq != 2 || got[1].Seq != 3 {
		t.Fatalf("DecodeBacklog = %+v", got)
	}
}

func TestSeverityJSONRoundTrip(t *testing.T) {
	for _, sev := range []Severity{SevInfo, SevWarn, SevError} {
		b, err := json.Marshal(sev)
		if err != nil {
			t.Fatal(err)
		}
		var back Severity
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		if back != sev {
			t.Fatalf("round-trip %v -> %s -> %v", sev, b, back)
		}
	}
	var bad Severity
	if err := json.Unmarshal([]byte(`"critical"`), &bad); err == nil {
		t.Fatal("unknown severity should fail to unmarshal")
	}
}

func TestConcurrentEmitAndRead(t *testing.T) {
	l := NewLog(Config{Capacity: 128, Logger: slog.New(slog.NewTextHandler(&bytes.Buffer{}, &slog.HandlerOptions{Level: slog.LevelError + 1}))})
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < 200; i++ {
				l.Emit(Severity(i%3), TypeBackpressure, "load", "goroutine", fmt.Sprintf("%d", g))
			}
		}(g)
	}
	done := make(chan struct{})
	var reader sync.WaitGroup
	reader.Add(1)
	go func() {
		defer reader.Done()
		<-start
		for {
			select {
			case <-done:
				return
			default:
			}
			p := l.Since(0, SevInfo, 50)
			for i := 1; i < len(p.Events); i++ {
				if p.Events[i].Seq <= p.Events[i-1].Seq {
					t.Error("events out of order under concurrency")
					return
				}
			}
		}
	}()
	close(start)
	wg.Wait()
	close(done)
	reader.Wait()
	if got := l.LastSeq(); got != 8*200 {
		t.Fatalf("LastSeq = %d, want %d", got, 8*200)
	}
}
