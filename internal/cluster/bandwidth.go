package cluster

import (
	"math"
	"math/rand"
)

// Bandwidth estimation tuning.
const (
	// bandwidthExactCutoff is the point count up to which
	// EstimateBandwidth considers every pairwise distance, returning the
	// exact historical value. Above it, pairs are sampled.
	bandwidthExactCutoff = 256
	// BandwidthSampleSeed seeds the deterministic pair sampler used for
	// inputs larger than the exact cutoff. Pinning the seed makes the
	// estimate a pure function of the input — two calls on the same
	// points always agree — while documenting that the large-n value is
	// a sampled approximation.
	BandwidthSampleSeed int64 = 0x6d6f7361 // "mosa"
	// bandwidthSamplePairs is the number of sampled pairs above the
	// exact cutoff. 32768 pairs put the quantile's standard error well
	// under 1% for any quantile the callers use.
	bandwidthSamplePairs = 1 << 15
)

// EstimateBandwidth returns a data-driven bandwidth: the given quantile
// (in [0,1], e.g. 0.3 like scikit-learn's estimate_bandwidth) of the
// pairwise point distances. Returns 0 for fewer than two points; callers
// should then fall back to a configured default.
//
// For n ≤ 256 points every pair is considered and the value is exact
// (identical to the historical full-sort implementation, via
// quickselect instead of an O(n² log n) sort). Larger inputs sample
// bandwidthSamplePairs pairs with the pinned BandwidthSampleSeed, so the
// cost is O(n + samples) instead of O(n²) and the result remains
// deterministic. A NaN quantile falls back to 0.3 (scikit-learn's
// default); infinities clamp to the [0,1] endpoints; non-finite pair
// distances (from non-finite coordinates) are ignored.
func EstimateBandwidth(points []Point, quantile float64) float64 {
	n := len(points)
	if n < 2 {
		return 0
	}
	switch {
	case math.IsNaN(quantile):
		quantile = 0.3
	case quantile < 0: // includes -Inf
		quantile = 0
	case quantile > 1: // includes +Inf
		quantile = 1
	}

	var dists []float64
	if n <= bandwidthExactCutoff {
		dists = make([]float64, 0, n*(n-1)/2)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				d := Dist(points[i], points[j])
				if !math.IsNaN(d) && !math.IsInf(d, 0) {
					dists = append(dists, d)
				}
			}
		}
	} else {
		rng := rand.New(rand.NewSource(BandwidthSampleSeed))
		dists = make([]float64, 0, bandwidthSamplePairs)
		for k := 0; k < bandwidthSamplePairs; k++ {
			i := rng.Intn(n)
			j := rng.Intn(n - 1)
			if j >= i {
				j++
			}
			d := Dist(points[i], points[j])
			if !math.IsNaN(d) && !math.IsInf(d, 0) {
				dists = append(dists, d)
			}
		}
	}
	if len(dists) == 0 {
		return 0
	}
	idx := int(quantile * float64(len(dists)-1))
	return selectKth(dists, idx)
}

// selectKth returns the k-th smallest element (0-based) of xs in
// expected O(len(xs)) time, partially reordering xs in place. The pivot
// is a median-of-three, so sorted and constant inputs stay linear.
func selectKth(xs []float64, k int) float64 {
	lo, hi := 0, len(xs)-1
	if k < lo {
		k = lo
	}
	if k > hi {
		k = hi
	}
	for lo < hi {
		// Median-of-three pivot, moved to xs[lo].
		mid := lo + (hi-lo)/2
		if xs[mid] < xs[lo] {
			xs[mid], xs[lo] = xs[lo], xs[mid]
		}
		if xs[hi] < xs[lo] {
			xs[hi], xs[lo] = xs[lo], xs[hi]
		}
		if xs[hi] < xs[mid] {
			xs[hi], xs[mid] = xs[mid], xs[hi]
		}
		pivot := xs[mid]
		// Hoare partition.
		i, j := lo-1, hi+1
		for {
			for {
				i++
				if xs[i] >= pivot {
					break
				}
			}
			for {
				j--
				if xs[j] <= pivot {
					break
				}
			}
			if i >= j {
				break
			}
			xs[i], xs[j] = xs[j], xs[i]
		}
		if k <= j {
			hi = j
		} else {
			lo = j + 1
		}
	}
	return xs[k]
}
