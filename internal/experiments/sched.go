package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"github.com/mosaic-hpc/mosaic/internal/sched"
)

// Scheduling experiment: the paper's Section V application. A contended
// workload (several heavy start-readers plus periodic checkpointers) runs
// under FCFS and under a schedule built from MOSAIC categories
// (staggering the input-read phases, interleaving checkpointers). The
// measured I/O stall reduction is the value the categorization delivers.

// SchedResult reports the policy comparison across several seeds.
type SchedResult struct {
	Trials         int
	MeanStallFCFS  float64 // seconds per trial
	MeanStallAware float64
	StallReduction float64 // 1 - aware/fcfs
	MakespanChange float64 // aware/fcfs - 1 (cost of staggering)
	MeanSlowFCFS   float64
	MeanSlowAware  float64
}

// Sched runs the comparison over `trials` jittered workloads.
func Sched(seed int64, trials int) (*SchedResult, error) {
	if trials < 1 {
		trials = 1
	}
	cfg := sched.Config{Slots: 32, PFSBandwidth: 20e9, JobBandwidth: 10e9}
	spec := sched.DefaultWorkloadSpec()
	stagger := spec.ReadBytes / cfg.JobBandwidth

	res := &SchedResult{Trials: trials}
	var makespanF, makespanA float64
	for i := 0; i < trials; i++ {
		rng := rand.New(rand.NewSource(seed + int64(i)))
		jobs := sched.BuildWorkload(spec, rng)
		cmp, err := sched.Compare(jobs, cfg, stagger)
		if err != nil {
			return nil, fmt.Errorf("experiments: sched trial %d: %w", i, err)
		}
		res.MeanStallFCFS += cmp.FCFS.StallTime
		res.MeanStallAware += cmp.Aware.StallTime
		res.MeanSlowFCFS += cmp.FCFS.MeanSlowdown
		res.MeanSlowAware += cmp.Aware.MeanSlowdown
		makespanF += cmp.FCFS.Makespan
		makespanA += cmp.Aware.Makespan
	}
	n := float64(trials)
	res.MeanStallFCFS /= n
	res.MeanStallAware /= n
	res.MeanSlowFCFS /= n
	res.MeanSlowAware /= n
	if res.MeanStallFCFS > 0 {
		res.StallReduction = 1 - res.MeanStallAware/res.MeanStallFCFS
	}
	if makespanF > 0 {
		res.MakespanChange = makespanA/makespanF - 1
	}
	return res, nil
}

// Write renders the result.
func (r *SchedResult) Write(w io.Writer) {
	fmt.Fprintf(w, "I/O-aware scheduling (Section V application), %d trials\n", r.Trials)
	fmt.Fprintf(w, "  cumulative I/O stall, FCFS            %8.0f s\n", r.MeanStallFCFS)
	fmt.Fprintf(w, "  cumulative I/O stall, category-aware  %8.0f s\n", r.MeanStallAware)
	fmt.Fprintf(w, "  stall reduction                       %8.1f%%\n", r.StallReduction*100)
	fmt.Fprintf(w, "  mean job slowdown: FCFS %.2fx -> aware %.2fx\n", r.MeanSlowFCFS, r.MeanSlowAware)
	fmt.Fprintf(w, "  makespan change from staggering       %+8.1f%%\n", r.MakespanChange*100)
}
