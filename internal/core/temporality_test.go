package core

import (
	"math"
	"testing"

	"github.com/mosaic-hpc/mosaic/internal/category"
	"github.com/mosaic-hpc/mosaic/internal/interval"
)

func TestChunksProportionalSplit(t *testing.T) {
	// One op spanning the whole run distributes uniformly.
	ops := []interval.Interval{{Start: 0, End: 100, Bytes: 400}}
	chunks := Chunks(ops, 100, 4)
	for i, c := range chunks {
		if math.Abs(c-100) > 1e-9 {
			t.Fatalf("chunk %d = %g, want 100", i, c)
		}
	}
}

func TestChunksBoundaryStraddle(t *testing.T) {
	// Op spanning [20, 30) of a 40s run with 4 chunks (width 10):
	// half its volume in chunk 2, half in... wait [20,30) is exactly
	// chunk 2. Use [15, 25): half in chunk 1, half in chunk 2.
	ops := []interval.Interval{{Start: 15, End: 25, Bytes: 100}}
	chunks := Chunks(ops, 40, 4)
	if math.Abs(chunks[1]-50) > 1e-9 || math.Abs(chunks[2]-50) > 1e-9 {
		t.Fatalf("chunks = %v", chunks)
	}
	if chunks[0] != 0 || chunks[3] != 0 {
		t.Fatalf("volume leaked: %v", chunks)
	}
}

func TestChunksInstantOp(t *testing.T) {
	ops := []interval.Interval{{Start: 35, End: 35, Bytes: 77}}
	chunks := Chunks(ops, 40, 4)
	if chunks[3] != 77 {
		t.Fatalf("instant op chunks = %v", chunks)
	}
}

func TestChunksVolumeConservation(t *testing.T) {
	ops := []interval.Interval{
		{Start: 0, End: 10, Bytes: 123},
		{Start: 5, End: 35, Bytes: 456},
		{Start: 38, End: 40, Bytes: 789},
	}
	chunks := Chunks(ops, 40, 4)
	var total float64
	for _, c := range chunks {
		total += c
	}
	if math.Abs(total-(123+456+789)) > 1e-6 {
		t.Fatalf("volume not conserved: %g", total)
	}
}

func TestChunksDegenerate(t *testing.T) {
	if got := Chunks(nil, 0, 4); len(got) != 4 {
		t.Fatal("zero runtime should still return n chunks")
	}
	if got := Chunks(nil, 10, 0); len(got) != 0 {
		t.Fatal("zero chunk count")
	}
}

func classify(chunks []float64, total int64) category.TemporalKind {
	cfg := DefaultConfig()
	return classifyTemporality(chunks, total, &cfg)
}

const sig = int64(200) << 20 // comfortably above the 100 MB threshold

func TestClassifyInsignificant(t *testing.T) {
	if got := classify([]float64{1, 1, 1, 1}, 50<<20); got != category.Insignificant {
		t.Fatalf("got %v", got)
	}
	// Exactly at the threshold is significant (strictly-less rule).
	if got := classify([]float64{100 << 20, 0, 0, 0}, 100<<20); got == category.Insignificant {
		t.Fatal("threshold boundary misclassified")
	}
}

func TestClassifySteady(t *testing.T) {
	if got := classify([]float64{100, 105, 95, 102}, sig); got != category.Steady {
		t.Fatalf("got %v", got)
	}
}

func TestClassifyOnStart(t *testing.T) {
	if got := classify([]float64{1000, 100, 80, 90}, sig); got != category.OnStart {
		t.Fatalf("got %v", got)
	}
}

func TestClassifyOnEnd(t *testing.T) {
	if got := classify([]float64{100, 80, 90, 1000}, sig); got != category.OnEnd {
		t.Fatalf("got %v", got)
	}
}

func TestClassifyAfterStart(t *testing.T) {
	if got := classify([]float64{10, 1000, 80, 90}, sig); got != category.AfterStart {
		t.Fatalf("got %v", got)
	}
}

func TestClassifyBeforeEnd(t *testing.T) {
	if got := classify([]float64{10, 90, 1000, 80}, sig); got != category.BeforeEnd {
		t.Fatalf("got %v", got)
	}
}

func TestClassifyAfterStartBeforeEnd(t *testing.T) {
	if got := classify([]float64{10, 1000, 900, 20}, sig); got != category.AfterStartBeforeEnd {
		t.Fatalf("got %v", got)
	}
}

func TestClassifyFirstAndLastResolvedByWeight(t *testing.T) {
	if got := classify([]float64{1000, 10, 10, 900}, sig); got != category.OnStart {
		t.Fatalf("start-heavy got %v", got)
	}
	if got := classify([]float64{900, 10, 10, 1000}, sig); got != category.OnEnd {
		t.Fatalf("end-heavy got %v", got)
	}
}

func TestClassifyWeakDominanceFallback(t *testing.T) {
	// No chunk dominates 2x over every other, CV >= 25%: fall back to
	// the argmax chunk — the paper's noted misclassification zone.
	got := classify([]float64{500, 300, 100, 100}, sig)
	if got != category.OnStart {
		t.Fatalf("weak dominance got %v, want on_start via argmax", got)
	}
}

func TestClassifyDominancePair(t *testing.T) {
	// First chunk and second chunk together dominate: {0,1} maps to
	// on_start (activity concentrated at the beginning).
	got := classify([]float64{1000, 900, 100, 90}, sig)
	if got != category.OnStart {
		t.Fatalf("got %v", got)
	}
	// Symmetric for the tail.
	got = classify([]float64{90, 100, 900, 1000}, sig)
	if got != category.OnEnd {
		t.Fatalf("got %v", got)
	}
}

func TestDominantChunks(t *testing.T) {
	if dom := dominantChunks([]float64{100, 10, 10, 10}, 2); len(dom) != 1 || dom[0] != 0 {
		t.Fatalf("dom = %v", dom)
	}
	if dom := dominantChunks([]float64{100, 90, 10, 10}, 2); len(dom) != 2 {
		t.Fatalf("dom = %v", dom)
	}
	if dom := dominantChunks([]float64{50, 40, 30, 25}, 2); dom != nil {
		t.Fatalf("flat profile should have no dominant set: %v", dom)
	}
	// All-but-one can dominate.
	if dom := dominantChunks([]float64{100, 90, 80, 1}, 2); len(dom) != 3 {
		t.Fatalf("dom = %v", dom)
	}
}

func TestConfigSaneClamps(t *testing.T) {
	var c Config
	s := c.sane()
	if s.ChunkCount < 2 || s.DominanceFactor <= 1 || s.SteadyCV <= 0 ||
		s.MeanShiftBandwidth <= 0 || s.MinGroupSize < 2 || s.SpikeRate <= 0 ||
		s.SpikeHighRate <= 0 || s.MultipleSpikes <= 0 || s.DensityRate <= 0 {
		t.Fatalf("sane() left broken values: %+v", s)
	}
	// A valid config passes through unchanged.
	d := DefaultConfig()
	if d.sane() != d {
		t.Fatal("sane() modified a valid config")
	}
}
