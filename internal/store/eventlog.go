package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// kindEvent frames records in a standalone AppendLog. The kind is
// deliberately NOT accepted by the store's segment scanner: an event
// log is its own file with its own lifecycle, never mixed into the
// content-addressed segment sequence.
const kindEvent byte = 4

// AppendLog is a minimal CRC-framed append-only log for small records
// (the cluster event journal). It reuses the store's frame layout —
// [u32 len][u8 kind][u16 keyLen=0][value][u32 crc] — so the same
// torn-tail recovery guarantees apply: on open the file is scanned,
// validated, and truncated to the last intact frame. All methods are
// safe for concurrent use.
type AppendLog struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	size   int64
	sync   bool
	buf    []byte
	closed bool

	records      int
	droppedBytes int64
}

// OpenAppendLog opens (creating if necessary) the log at path. With
// syncEach set, every Append is fsynced before it returns.
func OpenAppendLog(path string, syncEach bool) (*AppendLog, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening append log %s: %w", path, err)
	}
	l := &AppendLog{f: f, path: path, sync: syncEach}
	good, records, dropped, err := scanAppendLog(f, nil)
	if err != nil {
		f.Close()
		return nil, err
	}
	if dropped > 0 {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: truncating torn tail of %s: %w", path, err)
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: seeking %s: %w", path, err)
	}
	l.size = good
	l.records = records
	l.droppedBytes = dropped
	return l, nil
}

// scanAppendLog walks f from the start validating frames. It returns
// the offset after the last intact frame, the intact record count, and
// how many trailing bytes fail validation. When fn is non-nil it is
// called with each record's value; returning false stops the replay
// (validation still continues so the caller gets accurate bookkeeping).
func scanAppendLog(f *os.File, fn func(value []byte) bool) (good int64, records int, dropped int64, err error) {
	info, err := f.Stat()
	if err != nil {
		return 0, 0, 0, fmt.Errorf("store: stat append log: %w", err)
	}
	fileSize := info.Size()
	var (
		off     int64
		hdr     [frameHeaderLen]byte
		frame   []byte
		deliver = fn != nil
	)
	for {
		if off+frameHeaderLen > fileSize {
			break
		}
		if _, err := f.ReadAt(hdr[:], off); err != nil {
			return 0, 0, 0, fmt.Errorf("store: reading append log header: %w", err)
		}
		n := int64(binary.LittleEndian.Uint32(hdr[:]))
		if n < framePayloadMin || n > maxFrameLen || off+frameHeaderLen+n+frameCRCLen > fileSize {
			break
		}
		if int64(cap(frame)) < n+frameCRCLen {
			frame = make([]byte, n+frameCRCLen)
		}
		buf := frame[:n+frameCRCLen]
		if _, err := f.ReadAt(buf, off+frameHeaderLen); err != nil {
			return 0, 0, 0, fmt.Errorf("store: reading append log frame: %w", err)
		}
		payload := buf[:n]
		want := binary.LittleEndian.Uint32(buf[n:])
		if crc32.ChecksumIEEE(payload) != want {
			break
		}
		kind := payload[0]
		keyLen := int(binary.LittleEndian.Uint16(payload[1:3]))
		if kind != kindEvent || keyLen != 0 {
			break
		}
		if deliver {
			if !fn(payload[framePayloadMin:]) {
				deliver = false
			}
		}
		records++
		off += frameHeaderLen + n + frameCRCLen
	}
	return off, records, fileSize - off, nil
}

// Append writes one record. The value is framed and CRC-protected;
// with sync-each enabled it is durable when Append returns.
func (l *AppendLog) Append(value []byte) error {
	if payloadLen := framePayloadMin + len(value); payloadLen > maxFrameLen {
		return fmt.Errorf("store: append log record too large (%d bytes)", payloadLen)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("store: append log %s is closed", l.path)
	}
	l.buf = appendFrame(l.buf[:0], kindEvent, "", value)
	if _, err := l.f.Write(l.buf); err != nil {
		return fmt.Errorf("store: appending to %s: %w", l.path, err)
	}
	l.size += int64(len(l.buf))
	l.records++
	if l.sync {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("store: syncing %s: %w", l.path, err)
		}
	}
	return nil
}

// AppendRecord implements the event journal's sink interface
// (events.Sink) over Append.
func (l *AppendLog) AppendRecord(value []byte) error { return l.Append(value) }

// Replay calls fn with every intact record value in append order,
// stopping early if fn returns false. It opens its own read handle so
// concurrent Appends are unaffected; frames appended after the replay
// begins may or may not be delivered.
func (l *AppendLog) Replay(fn func(value []byte) bool) error {
	f, err := os.Open(l.path)
	if err != nil {
		return fmt.Errorf("store: opening append log for replay: %w", err)
	}
	defer f.Close()
	_, _, _, err = scanAppendLog(f, fn)
	return err
}

// Records reports how many intact records the log holds.
func (l *AppendLog) Records() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.records
}

// Size reports the log's current byte length.
func (l *AppendLog) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// DroppedTailBytes reports how many torn-tail bytes were discarded
// when the log was opened.
func (l *AppendLog) DroppedTailBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.droppedBytes
}

// Close flushes and closes the log. Further Appends fail.
func (l *AppendLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	return l.f.Close()
}
