package telemetry

import (
	"math"
	"runtime"
	"runtime/debug"
	runtimemetrics "runtime/metrics"
	"sync"
	"sync/atomic"
)

// buildVersion is the binary's version string, settable by main
// packages (typically from an ldflags-injected variable) before or
// after metric registration — the build-info gauge reads it lazily at
// collect time.
var buildVersion atomic.Value // string

// SetBuildVersion records the binary's version for the
// mosaic_build_info gauge exposed by RegisterRuntimeMetrics.
func SetBuildVersion(v string) {
	if v != "" {
		buildVersion.Store(v)
	}
}

// BuildVersion returns the version set by SetBuildVersion, falling
// back to the main module's version from build info, then "unknown".
func BuildVersion() string {
	if v, ok := buildVersion.Load().(string); ok && v != "" {
		return v
	}
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		return bi.Main.Version
	}
	return "unknown"
}

// runtime/metrics sample names the collector reads. Names are resolved
// defensively against the running toolchain's descriptor list: samples
// the runtime does not support are skipped, never assumed.
const (
	rmHeapObjects = "/memory/classes/heap/objects:bytes"
	rmHeapLive    = "/gc/heap/live:bytes"
	rmGoroutines  = "/sched/goroutines:goroutines"
	rmGomaxprocs  = "/sched/gomaxprocs:threads"
	rmGCCycles    = "/gc/cycles/total:gc-cycles"
	rmGCPauses    = "/sched/pauses/total/gc:seconds" // go1.22+
	rmGCPausesOld = "/gc/pauses:seconds"             // pre-1.22 fallback
	rmSchedLat    = "/sched/latencies:seconds"
)

// runtimeBuckets bound the GC-pause and scheduler-latency histograms:
// sub-microsecond runtime internals up to a 100ms+ catch-all.
func runtimeBuckets() []float64 {
	return []float64{1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1}
}

// runtimeCollector bridges runtime/metrics samples into registry
// instruments on every scrape.
type runtimeCollector struct {
	mu      sync.Mutex
	samples []runtimemetrics.Sample

	heapBytes  *Gauge
	heapLive   *Gauge
	goroutines *Gauge
	gomaxprocs *Gauge
	gcCycles   *Counter
	lastCycles uint64
	gcPause    *Histogram
	gcPrev     []uint64
	schedLat   *Histogram
	schedPrev  []uint64

	reg      *Registry
	buildSet bool
	idx      map[string]int // sample name -> index in samples
}

// RegisterRuntimeMetrics wires a runtime/metrics-backed collector into
// reg via an OnCollect hook, exposing the mosaic_runtime_* family (GC
// pauses, heap bytes, goroutines, scheduler latency, GOMAXPROCS) and a
// mosaic_build_info gauge on every exposition. Registration is
// idempotent per registry.
func RegisterRuntimeMetrics(reg *Registry) {
	c := &runtimeCollector{reg: reg, idx: make(map[string]int)}

	supported := make(map[string]bool)
	for _, d := range runtimemetrics.All() {
		supported[d.Name] = true
	}
	add := func(name string) bool {
		if !supported[name] {
			return false
		}
		c.idx[name] = len(c.samples)
		c.samples = append(c.samples, runtimemetrics.Sample{Name: name})
		return true
	}

	if add(rmHeapObjects) {
		c.heapBytes = reg.Gauge("mosaic_runtime_heap_bytes",
			"Bytes of memory occupied by live heap objects plus unswept spans.", nil)
	}
	if add(rmHeapLive) {
		c.heapLive = reg.Gauge("mosaic_runtime_heap_live_bytes",
			"Bytes of heap memory occupied by objects that were live at the last GC.", nil)
	}
	if add(rmGoroutines) {
		c.goroutines = reg.Gauge("mosaic_runtime_goroutines",
			"Current number of live goroutines.", nil)
	}
	if add(rmGomaxprocs) {
		c.gomaxprocs = reg.Gauge("mosaic_runtime_gomaxprocs",
			"Current GOMAXPROCS setting.", nil)
	}
	if add(rmGCCycles) {
		c.gcCycles = reg.Counter("mosaic_runtime_gc_cycles_total",
			"Completed GC cycles.", nil)
	}
	pauseName := rmGCPauses
	if !supported[pauseName] {
		pauseName = rmGCPausesOld
	}
	if add(pauseName) {
		c.idx[rmGCPauses] = c.idx[pauseName] // read under the canonical key
		c.gcPause = reg.Histogram("mosaic_runtime_gc_pause_seconds",
			"Distribution of stop-the-world GC pause durations.", runtimeBuckets(), nil)
	}
	if add(rmSchedLat) {
		c.schedLat = reg.Histogram("mosaic_runtime_sched_latency_seconds",
			"Distribution of goroutine scheduling latencies.", runtimeBuckets(), nil)
	}

	reg.OnCollect("runtime", c.collect)
}

// collect samples the runtime and folds deltas into the instruments.
func (c *runtimeCollector) collect() {
	c.mu.Lock()
	defer c.mu.Unlock()

	if !c.buildSet {
		c.reg.Gauge("mosaic_build_info",
			"Build metadata; value is always 1.",
			Labels{"version": BuildVersion(), "go": runtime.Version()}).Set(1)
		c.buildSet = true
	}
	if len(c.samples) == 0 {
		return
	}
	runtimemetrics.Read(c.samples)

	if c.heapBytes != nil {
		c.heapBytes.Set(float64(c.samples[c.idx[rmHeapObjects]].Value.Uint64()))
	}
	if c.heapLive != nil {
		c.heapLive.Set(float64(c.samples[c.idx[rmHeapLive]].Value.Uint64()))
	}
	if c.goroutines != nil {
		c.goroutines.Set(float64(c.samples[c.idx[rmGoroutines]].Value.Uint64()))
	}
	if c.gomaxprocs != nil {
		c.gomaxprocs.Set(float64(c.samples[c.idx[rmGomaxprocs]].Value.Uint64()))
	}
	if c.gcCycles != nil {
		cur := c.samples[c.idx[rmGCCycles]].Value.Uint64()
		if cur > c.lastCycles {
			c.gcCycles.Add(int64(cur - c.lastCycles))
		}
		c.lastCycles = cur
	}
	if c.gcPause != nil {
		c.gcPrev = foldRuntimeHistogram(c.gcPause, c.samples[c.idx[rmGCPauses]].Value.Float64Histogram(), c.gcPrev)
	}
	if c.schedLat != nil {
		c.schedPrev = foldRuntimeHistogram(c.schedLat, c.samples[c.idx[rmSchedLat]].Value.Float64Histogram(), c.schedPrev)
	}
}

// foldRuntimeHistogram feeds the delta between a runtime
// Float64Histogram and its previous snapshot into dst, observing each
// bucket's delta at the bucket midpoint. It returns the new snapshot
// of cumulative counts for the next collect.
func foldRuntimeHistogram(dst *Histogram, h *runtimemetrics.Float64Histogram, prev []uint64) []uint64 {
	if h == nil {
		return prev
	}
	counts := h.Counts
	if len(prev) != len(counts) {
		// First read (or the runtime changed bucket layout): baseline
		// without observing, so restarts don't replay history.
		return append([]uint64(nil), counts...)
	}
	for i, n := range counts {
		delta := int64(n - prev[i])
		if delta <= 0 {
			continue
		}
		// Buckets[i], Buckets[i+1] bound bucket i; edges may be ±Inf.
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		var mid float64
		switch {
		case math.IsInf(lo, -1) && math.IsInf(hi, 1):
			mid = 0
		case math.IsInf(lo, -1):
			mid = hi
		case math.IsInf(hi, 1):
			mid = lo
		default:
			mid = lo + (hi-lo)/2
		}
		dst.observeBulk(mid, delta)
	}
	copy(prev, counts)
	return prev
}
