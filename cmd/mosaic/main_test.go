package main

import (
	"context"
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"github.com/mosaic-hpc/mosaic"
)

// writeTestTrace builds a small checkpointing trace on disk.
func writeTestTrace(t *testing.T, dir, name string) string {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	b := mosaic.NewTraceBuilder(rng, "u", "/bin/app", 1, 8, 3600)
	b.Burst(mosaic.BurstSpec{At: 30, Duration: 60, Bytes: 1 << 30, Records: 8})
	b.Periodic(mosaic.PeriodicSpec{Period: 300, PhaseFrac: 0.1, BytesPer: 1 << 30, Records: 8, Write: true})
	path := filepath.Join(dir, name)
	if err := mosaic.WriteTrace(path, b.Job()); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSingleTrace(t *testing.T) {
	dir := t.TempDir()
	path := writeTestTrace(t, dir, "a.mosd")
	cfg := mosaic.DefaultConfig()
	if err := run(context.Background(), path, cfg, 1, singleOpts{}, "", false, "", "", corpusOpts{}); err != nil {
		t.Fatal(err)
	}
	// Explain + timeline paths.
	if err := run(context.Background(), path, cfg, 1, singleOpts{explain: true, timeline: true}, "", false, "", "", corpusOpts{}); err != nil {
		t.Fatal(err)
	}
	// JSON output.
	jsonPath := filepath.Join(dir, "out.json")
	if err := run(context.Background(), path, cfg, 1, singleOpts{jsonOut: jsonPath}, jsonPath, false, "", "", corpusOpts{}); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(jsonPath); err != nil || fi.Size() == 0 {
		t.Fatalf("json output missing: %v", err)
	}
}

func TestRunSingleExplainJSON(t *testing.T) {
	dir := t.TempDir()
	path := writeTestTrace(t, dir, "a.mosd")
	out := filepath.Join(dir, "explain.json")
	so := singleOpts{explain: true, explainJSON: out, explainMargin: 0.1}
	if err := run(context.Background(), path, mosaic.DefaultConfig(), 1, so, "", false, "", "", corpusOpts{}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var e mosaic.Explanation
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatalf("-explain-json artifact is not a valid explanation: %v", err)
	}
	if e.Margin != 0.1 {
		t.Fatalf("margin not threaded: got %g, want 0.1", e.Margin)
	}
	if len(e.Labels) == 0 || e.EvidenceCount() == 0 {
		t.Fatalf("explanation empty: labels=%v evidence=%d", e.Labels, e.EvidenceCount())
	}
}

func TestRunCorpusDir(t *testing.T) {
	dir := t.TempDir()
	writeTestTrace(t, dir, "a.mosd")
	writeTestTrace(t, dir, "b.mosd")
	jsonPath := filepath.Join(dir, "corpus.json")
	if err := run(context.Background(), dir, mosaic.DefaultConfig(), 2, singleOpts{}, jsonPath, true, "", "", corpusOpts{}); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(jsonPath); err != nil || fi.Size() == 0 {
		t.Fatalf("corpus json missing: %v", err)
	}
}

func TestRunConvertAndAnonymize(t *testing.T) {
	dir := t.TempDir()
	path := writeTestTrace(t, dir, "a.mosd")
	for _, out := range []string{"b.json", "c.txt", "d.mosd"} {
		target := filepath.Join(dir, out)
		if err := run(context.Background(), path, mosaic.DefaultConfig(), 1, singleOpts{}, "", false, target, "pepper", corpusOpts{}); err != nil {
			t.Fatalf("convert to %s: %v", out, err)
		}
		back, err := mosaic.ReadTrace(target)
		if err != nil {
			t.Fatalf("re-reading %s: %v", out, err)
		}
		if back.User == "u" {
			t.Fatal("anonymization not applied during convert")
		}
	}
}

func TestRunRejectsCorruptedSingle(t *testing.T) {
	dir := t.TempDir()
	path := writeTestTrace(t, dir, "a.mosd")
	j, err := mosaic.ReadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Runtime = -1
	bad := filepath.Join(dir, "bad.mosd")
	if err := mosaic.WriteTrace(bad, j); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), bad, mosaic.DefaultConfig(), 1, singleOpts{}, "", false, "", "", corpusOpts{}); err == nil {
		t.Fatal("corrupted single trace accepted")
	}
}

func TestRunMissingTarget(t *testing.T) {
	if err := run(context.Background(), "/nonexistent/path", mosaic.DefaultConfig(), 1, singleOpts{}, "", false, "", "", corpusOpts{}); err == nil {
		t.Fatal("missing target accepted")
	}
}

func TestRunCorpusCancelled(t *testing.T) {
	dir := t.TempDir()
	writeTestTrace(t, dir, "a.mosd")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := run(ctx, dir, mosaic.DefaultConfig(), 1, singleOpts{}, "", false, "", "", corpusOpts{})
	if err == nil {
		t.Fatal("cancelled corpus run succeeded")
	}
}

func TestRunCorpusProgress(t *testing.T) {
	dir := t.TempDir()
	writeTestTrace(t, dir, "a.mosd")
	writeTestTrace(t, dir, "b.mosd")
	if err := run(context.Background(), dir, mosaic.DefaultConfig(), 2, singleOpts{}, "", false, "", "", corpusOpts{progress: true}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCorpusTraceOut(t *testing.T) {
	dir := t.TempDir()
	writeTestTrace(t, dir, "a.mosd")
	writeTestTrace(t, dir, "b.mosd")
	tracePath := filepath.Join(t.TempDir(), "run.trace.json")
	co := corpusOpts{traceOut: tracePath, slowK: 3}
	if err := run(context.Background(), dir, mosaic.DefaultConfig(), 2, singleOpts{}, "", false, "", "", co); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Cat  string `json:"cat"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("-trace-out artifact is not valid trace-event JSON: %v", err)
	}
	var decodes int
	for _, e := range doc.TraceEvents {
		if e.Cat == "decode" && e.Ph == "X" {
			decodes++
		}
	}
	if decodes != 2 {
		t.Fatalf("want 2 decode spans (one per trace), got %d", decodes)
	}
}
