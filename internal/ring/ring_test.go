package ring

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"testing"
)

// members builds an n-node membership with stable IDs.
func members(n int) []Node {
	out := make([]Node, n)
	for i := range out {
		out[i] = Node{ID: fmt.Sprintf("node-%02d", i), Addr: fmt.Sprintf("10.0.0.%d:7000", i+1)}
	}
	return out
}

// traceKeys returns k SHA-256 hex keys, the shape of real trace IDs.
func traceKeys(k int) []string {
	out := make([]string, k)
	for i := range out {
		sum := sha256.Sum256([]byte(fmt.Sprintf("trace-%d", i)))
		out[i] = hex.EncodeToString(sum[:])
	}
	return out
}

func TestTableDeterministic(t *testing.T) {
	nodes := members(5)
	a, err := NewTable(nodes, 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Any permutation of the membership must route identically: nodes
	// build their tables independently from config files whose entry
	// order nobody controls.
	rng := rand.New(rand.NewSource(1))
	keys := traceKeys(2000)
	for trial := 0; trial < 5; trial++ {
		shuffled := append([]Node(nil), nodes...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		b, err := NewTable(shuffled, 64, 3)
		if err != nil {
			t.Fatal(err)
		}
		if a.Version() != b.Version() {
			t.Fatalf("permuted membership changed version: %x vs %x", a.Version(), b.Version())
		}
		for _, k := range keys {
			if ao, bo := a.Owner(k).ID, b.Owner(k).ID; ao != bo {
				t.Fatalf("permuted membership moved key %s: %s vs %s", k[:8], ao, bo)
			}
			ar, br := a.Replicas(k), b.Replicas(k)
			for i := range ar {
				if ar[i].ID != br[i].ID {
					t.Fatalf("permuted membership changed replica set of %s", k[:8])
				}
			}
		}
	}
}

func TestTableVersionTracksMembership(t *testing.T) {
	base, _ := NewTable(members(4), 64, 2)
	cases := []struct {
		name  string
		nodes []Node
		v, rf int
	}{
		{"node added", members(5), 64, 2},
		{"node removed", members(3), 64, 2},
		{"vnodes changed", members(4), 32, 2},
		{"rf changed", members(4), 64, 3},
	}
	for _, c := range cases {
		tb, err := NewTable(c.nodes, c.v, c.rf)
		if err != nil {
			t.Fatal(err)
		}
		if tb.Version() == base.Version() {
			t.Errorf("%s: version unchanged", c.name)
		}
	}
	same, _ := NewTable(members(4), 64, 2)
	if same.Version() != base.Version() {
		t.Error("identical configuration produced a different version")
	}
}

func TestTableRejectsBadMembership(t *testing.T) {
	if _, err := NewTable(nil, 0, 0); err == nil {
		t.Error("empty membership accepted")
	}
	dup := []Node{{ID: "a", Addr: "x"}, {ID: "a", Addr: "y"}}
	if _, err := NewTable(dup, 0, 0); err == nil {
		t.Error("duplicate node ID accepted")
	}
}

func TestReplicasDistinctAndOwnerFirst(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 9} {
		for _, rf := range []int{1, 2, 3, 4} {
			tb, err := NewTable(members(n), 64, rf)
			if err != nil {
				t.Fatal(err)
			}
			want := min(rf, n)
			for _, k := range traceKeys(500) {
				reps := tb.Replicas(k)
				if len(reps) != want {
					t.Fatalf("n=%d rf=%d: %d replicas, want %d", n, rf, len(reps), want)
				}
				if reps[0].ID != tb.Owner(k).ID {
					t.Fatalf("n=%d rf=%d: replica[0] %s is not the owner %s", n, rf, reps[0].ID, tb.Owner(k).ID)
				}
				seen := map[string]bool{}
				for _, r := range reps {
					if seen[r.ID] {
						t.Fatalf("n=%d rf=%d: duplicate replica %s for key %s", n, rf, r.ID, k[:8])
					}
					seen[r.ID] = true
					if !tb.IsReplica(k, r.ID) {
						t.Fatalf("IsReplica(%s, %s) = false for a member of Replicas", k[:8], r.ID)
					}
				}
			}
		}
	}
}

// TestKeyMovementOnJoinLeave is the consistent-hashing contract: one
// membership change moves close to the ideal 1/N of the keyspace and
// never more than 2/N.
func TestKeyMovementOnJoinLeave(t *testing.T) {
	const keys = 20000
	ks := traceKeys(keys)
	for _, n := range []int{4, 8} {
		before, err := NewTable(members(n), 0, 2)
		if err != nil {
			t.Fatal(err)
		}
		// Join: members(n+1) is members(n) plus one new node.
		joined, err := NewTable(members(n+1), 0, 2)
		if err != nil {
			t.Fatal(err)
		}
		moved := 0
		for _, k := range ks {
			if before.Owner(k).ID != joined.Owner(k).ID {
				moved++
			}
		}
		if limit := 2 * keys / (n + 1); moved > limit {
			t.Errorf("join at n=%d moved %d/%d keys, cap %d (2/N)", n, moved, keys, limit)
		}
		if moved == 0 {
			t.Errorf("join at n=%d moved no keys — new node owns nothing", n)
		}
		// Leave: drop one existing member.
		left, err := NewTable(members(n)[:n-1], 0, 2)
		if err != nil {
			t.Fatal(err)
		}
		moved = 0
		for _, k := range ks {
			if before.Owner(k).ID != left.Owner(k).ID {
				moved++
			}
		}
		if limit := 2 * keys / n; moved > limit {
			t.Errorf("leave at n=%d moved %d/%d keys, cap %d (2/N)", n, moved, keys, limit)
		}
	}
}

// TestOwnershipBalance checks virtual nodes spread load: no member owns
// more than 2x its fair share at the default vnode count.
func TestOwnershipBalance(t *testing.T) {
	const n, keys = 6, 30000
	tb, err := NewTable(members(n), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, k := range traceKeys(keys) {
		counts[tb.Owner(k).ID]++
	}
	for id, c := range counts {
		if c > 2*keys/n {
			t.Errorf("node %s owns %d/%d keys, over 2x fair share", id, c, keys)
		}
	}
	if len(counts) != n {
		t.Errorf("only %d/%d nodes own keys", len(counts), n)
	}
}

func TestNodeByID(t *testing.T) {
	tb, err := NewTable(members(4), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n, ok := tb.NodeByID("node-02"); !ok || n.Addr != "10.0.0.3:7000" {
		t.Errorf("NodeByID(node-02) = %+v, %v", n, ok)
	}
	if _, ok := tb.NodeByID("absent"); ok {
		t.Error("NodeByID found an absent node")
	}
}

func TestReplicationFactorCappedAtMembers(t *testing.T) {
	tb, err := NewTable(members(2), 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if tb.RF() != 2 {
		t.Errorf("RF = %d, want capped at 2", tb.RF())
	}
}
