package ring

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"github.com/mosaic-hpc/mosaic/internal/reqtrace"
)

// startTestServer serves s on a loopback listener and returns its
// address. The server is shut down when the test ends.
func startTestServer(t *testing.T, s *Server) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(l) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return l.Addr().String()
}

func TestClientServerRoundTrip(t *testing.T) {
	s := NewServer(ServerOptions{})
	s.Handle(OpQuery, "query", func(_ context.Context, f *Frame) ([]byte, error) {
		return append([]byte("echo:"), f.Body...), nil
	})
	addr := startTestServer(t, s)
	c := NewClient(addr, time.Second)
	defer c.Close()

	resp, err := c.Call(context.Background(), OpQuery, "query", "rid-1", []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "echo:hello" {
		t.Fatalf("resp = %q", resp)
	}
	// Ping comes pre-registered.
	if resp, err = c.Call(context.Background(), OpPing, "ping", "", nil); err != nil || string(resp) != `{"ok":true}` {
		t.Fatalf("ping: %q, %v", resp, err)
	}
}

func TestClientErrorMapping(t *testing.T) {
	s := NewServer(ServerOptions{})
	s.Handle(OpResult, "result", func(context.Context, *Frame) ([]byte, error) {
		return nil, ErrNotFound
	})
	s.Handle(OpStats, "stats", func(context.Context, *Frame) ([]byte, error) {
		return nil, errors.New("disk on fire")
	})
	addr := startTestServer(t, s)
	c := NewClient(addr, time.Second)
	defer c.Close()

	if _, err := c.Call(context.Background(), OpResult, "result", "", nil); !errors.Is(err, ErrNotFound) {
		t.Errorf("miss maps to %v, want ErrNotFound", err)
	}
	_, err := c.Call(context.Background(), OpStats, "stats", "", nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("handler failure maps to %T %v, want RemoteError", err, err)
	}
	if re.Msg != "disk on fire" || re.Op != "stats" {
		t.Errorf("RemoteError = %+v", re)
	}
	// Unknown op is also an application error, not a dropped connection.
	if _, err := c.Call(context.Background(), 99, "mystery", "", nil); !errors.As(err, &re) {
		t.Errorf("unknown op maps to %v, want RemoteError", err)
	}
}

// TestTracePropagation drives one call with a client-side request trace
// and a recording server: the server-side root must adopt the client's
// trace ID and request ID, so a flight-recorder dump on either node
// shows the same trace.
func TestTracePropagation(t *testing.T) {
	rec := reqtrace.NewRecorder(reqtrace.RecorderConfig{Capacity: 8})
	s := NewServer(ServerOptions{Flight: rec})
	var gotRID, gotTP string
	s.Handle(OpQuery, "query", func(ctx context.Context, f *Frame) ([]byte, error) {
		gotRID, gotTP = f.RequestID, f.Traceparent
		return nil, nil
	})
	addr := startTestServer(t, s)
	c := NewClient(addr, time.Second)
	defer c.Close()

	ct := reqtrace.New(reqtrace.StartOptions{Method: "GET", Route: "/v1/query", RequestID: "req-42"})
	ctx := reqtrace.NewContext(context.Background(), ct)
	if _, err := c.Call(ctx, OpQuery, "query", "req-42", nil); err != nil {
		t.Fatal(err)
	}
	ct.FinishRoot(200)

	if gotRID != "req-42" {
		t.Errorf("peer saw request ID %q", gotRID)
	}
	tid, _, ok := reqtrace.ParseTraceparent(gotTP)
	if !ok || tid != ct.ID() {
		t.Errorf("peer saw traceparent %q, want trace %s", gotTP, ct.ID())
	}
	recent := rec.Recent(1)
	if len(recent) != 1 {
		t.Fatal("server recorded no trace")
	}
	if recent[0].Trace != ct.ID().String() || recent[0].RequestID != "req-42" || recent[0].Route != "query" {
		t.Errorf("server-side trace = %+v, want adopted trace %s", recent[0], ct.ID())
	}
}

func TestConcurrentCalls(t *testing.T) {
	s := NewServer(ServerOptions{})
	s.Handle(OpQuery, "query", func(_ context.Context, f *Frame) ([]byte, error) {
		time.Sleep(time.Millisecond)
		return f.Body, nil
	})
	addr := startTestServer(t, s)
	c := NewClient(addr, 5*time.Second)
	defer c.Close()

	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		go func(i int) {
			want := fmt.Sprintf("payload-%d", i)
			resp, err := c.Call(context.Background(), OpQuery, "query", "", []byte(want))
			if err == nil && string(resp) != want {
				err = fmt.Errorf("cross-wired response %q for %q", resp, want)
			}
			errs <- err
		}(i)
	}
	for i := 0; i < 32; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestKillFailsInFlight(t *testing.T) {
	s := NewServer(ServerOptions{})
	block := make(chan struct{})
	s.Handle(OpQuery, "query", func(context.Context, *Frame) ([]byte, error) {
		<-block
		return nil, nil
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	c := NewClient(l.Addr().String(), 5*time.Second)
	defer c.Close()
	defer close(block)

	done := make(chan error, 1)
	go func() {
		_, err := c.Call(context.Background(), OpQuery, "query", "", nil)
		done <- err
	}()
	// Let the call reach the handler, then crash the server under it.
	time.Sleep(50 * time.Millisecond)
	s.Kill()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("call survived Kill")
		}
		var re *RemoteError
		if errors.As(err, &re) {
			t.Fatalf("Kill produced a RemoteError (%v), want a transport error", err)
		}
		if !strings.Contains(err.Error(), l.Addr().String()) {
			t.Errorf("transport error does not name the peer: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("call hung after Kill")
	}
}
