// Package mosaic is the public API of the MOSAIC library: detection and
// categorization of I/O patterns in HPC application traces, reproducing
// Jolivel, Tessier, Monniot & Pallez, "MOSAIC: Detection and
// Categorization of I/O Patterns in HPC Applications" (PDSW 2024).
//
// MOSAIC consumes Darshan-like traces (see ReadTrace / the Job model),
// pre-processes them (validation, per-application deduplication, merging
// of concurrent and neighboring operations) and assigns each trace a set
// of non-exclusive categories along three axes:
//
//   - temporality: when reads/writes happen ({read,write}_on_start,
//     _on_end, _after_start, _before_end, _after_start_before_end,
//     _steady, _insignificant);
//   - periodicity: checkpoint-style repetition and its period magnitude
//     ({read,write}_periodic[_second|_minute|_hour|_day_or_more],
//     _periodic_{low,high}_busy_time);
//   - metadata impact: load on the metadata server (metadata_high_spike,
//     _multiple_spikes, _high_density, _insignificant_load).
//
// Quick start:
//
//	job, err := mosaic.ReadTrace("trace.mosd")
//	...
//	res, err := mosaic.Categorize(job, mosaic.DefaultConfig())
//	fmt.Println(res.Labels) // e.g. [metadata_multiple_spikes write_periodic ...]
//
// For whole corpora, AnalyzeCorpus streams a directory of traces through
// the full pipeline in parallel and returns funnel statistics, per-
// application results and aggregate distributions.
package mosaic

import (
	"fmt"

	"github.com/mosaic-hpc/mosaic/internal/category"
	"github.com/mosaic-hpc/mosaic/internal/core"
	"github.com/mosaic-hpc/mosaic/internal/darshan"
	"github.com/mosaic-hpc/mosaic/internal/report"
)

// Trace model (Darshan-compatible), re-exported from the substrate.
type (
	// Job is one execution trace: a job header plus per-(file, rank)
	// counter records.
	Job = darshan.Job
	// FileRecord is the per-file aggregation unit of a trace.
	FileRecord = darshan.FileRecord
	// Counters is the Darshan-style counter set of a record.
	Counters = darshan.Counters
	// Module identifies the I/O API of a record (POSIX, MPI-IO, STDIO).
	Module = darshan.Module
)

// Module constants.
const (
	ModPOSIX = darshan.ModPOSIX
	ModMPIIO = darshan.ModMPIIO
	ModSTDIO = darshan.ModSTDIO
)

// Category taxonomy, re-exported.
type (
	// Category is one behavioural label, e.g. "read_on_start".
	Category = category.Category
	// Set is the non-exclusive category set assigned to a trace.
	Set = category.Set
	// Direction distinguishes read from write behaviour.
	Direction = category.Direction
	// TemporalKind enumerates the temporality sub-labels.
	TemporalKind = category.TemporalKind
	// PeriodMagnitude is the order of magnitude of a detected period.
	PeriodMagnitude = category.PeriodMagnitude
)

// Re-exported category constructors and constants. See package
// internal/category for the full taxonomy.
var (
	// Temporal builds a temporality category, e.g. Temporal(DirRead, OnStart).
	Temporal = category.Temporal
	// Periodic builds the base periodicity category for a direction.
	Periodic = category.Periodic
	// PeriodicMagnitude builds a magnitude-qualified periodicity category.
	PeriodicMagnitudeCat = category.PeriodicMagnitude
	// PeriodicBusy builds the busy-time periodicity category.
	PeriodicBusy = category.PeriodicBusy
	// AllCategories returns the closed set of categories MOSAIC can emit.
	AllCategories = category.All
)

// Direction and temporality constants.
const (
	DirRead  = category.DirRead
	DirWrite = category.DirWrite

	OnStart             = category.OnStart
	OnEnd               = category.OnEnd
	AfterStart          = category.AfterStart
	BeforeEnd           = category.BeforeEnd
	AfterStartBeforeEnd = category.AfterStartBeforeEnd
	Steady              = category.Steady
	Insignificant       = category.Insignificant
)

// Metadata categories.
const (
	MetaHighSpike         = category.MetaHighSpike
	MetaMultipleSpikes    = category.MetaMultipleSpikes
	MetaHighDensity       = category.MetaHighDensity
	MetaInsignificantLoad = category.MetaInsignificantLoad
)

// Pipeline types, re-exported.
type (
	// Config holds every threshold of the method; see DefaultConfig.
	Config = core.Config
	// Result is the categorization of one trace.
	Result = core.Result
	// DirectionReport describes the detected behaviour of one direction.
	DirectionReport = core.DirectionReport
	// MetaReport describes the measured metadata load.
	MetaReport = core.MetaReport
	// FunnelStats summarizes the pre-processing funnel.
	FunnelStats = core.FunnelStats
	// AppGroup is a deduplicated application with its run count.
	AppGroup = core.AppGroup
	// Aggregator accumulates results into corpus-level distributions.
	Aggregator = report.Aggregator
)

// DefaultConfig returns the thresholds used in the paper's evaluation
// (100 MB significance, 4 temporal chunks, 2x dominance, 25% CV, 250/50
// req/s metadata spikes, 0.1%/1% merge gaps).
func DefaultConfig() Config { return core.DefaultConfig() }

// NewAggregator returns an empty corpus aggregator.
func NewAggregator() *Aggregator { return report.NewAggregator() }

// Validate checks a trace's structural integrity, returning an error
// describing the first corruption found (IsCorrupted reports whether an
// error marks corruption).
func Validate(j *Job) error { return darshan.Validate(j) }

// IsCorrupted reports whether err was produced by Validate for a
// corrupted trace.
func IsCorrupted(err error) bool { return darshan.IsCorrupted(err) }

// Categorize runs the full MOSAIC detection chain — merging, periodicity,
// temporality and metadata analysis — on one validated trace.
func Categorize(j *Job, cfg Config) (*Result, error) {
	return core.Categorize(j, cfg)
}

// MustCategorize is Categorize for traces known to be well-formed; it
// panics on pipeline errors. Intended for tests and examples.
func MustCategorize(j *Job, cfg Config) *Result {
	res, err := core.Categorize(j, cfg)
	if err != nil {
		panic(fmt.Sprintf("mosaic: categorize: %v", err))
	}
	return res
}

// ReadTrace loads one trace file (binary .mosd or .json).
func ReadTrace(path string) (*Job, error) { return darshan.ReadFile(path) }

// WriteTrace stores a trace (format selected by extension).
func WriteTrace(path string, j *Job) error { return darshan.WriteFile(path, j) }

// ListCorpus returns the trace files under a directory.
func ListCorpus(dir string) ([]string, error) { return darshan.ListCorpus(dir) }

// Anonymize replaces identifying fields of a trace (user, uid,
// executable, file paths, free-form metadata) with salted pseudonyms,
// like publicly released Darshan corpora. Counters and timestamps are
// untouched, so categorization is unaffected; pseudonyms are stable
// within a salt, so per-application deduplication keeps working.
func Anonymize(j *Job, salt string) {
	darshan.NewAnonymizer(salt).Job(j)
}
