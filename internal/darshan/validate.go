package darshan

import (
	"errors"
	"fmt"
	"math"
)

// Validation implements step (1) of the MOSAIC workflow: opening each
// trace and checking its validity. The paper evicts "corrupted entries
// (when a deallocation happens before the end of the application's
// execution for instance)"; on the Blue Waters corpus this removed 32% of
// traces (Figure 3).

// ErrCorrupted is the sentinel wrapped by all validation failures.
var ErrCorrupted = errors.New("darshan: corrupted trace")

// CorruptionKind enumerates why a trace was rejected, so that the
// pre-processing funnel can report eviction reasons.
type CorruptionKind uint8

// Corruption kinds detected by Validate.
const (
	CorruptNone          CorruptionKind = iota
	CorruptBadHeader                    // non-positive runtime, nprocs, end before start
	CorruptBadTimestamps                // NaN/Inf or negative timestamps
	CorruptEarlyDealloc                 // record closed/deallocated before its I/O finished
	CorruptAfterEnd                     // record activity past the end of the execution
	CorruptNegativeCount                // negative counters
	CorruptInverted                     // end timestamp before start timestamp
	CorruptBadModule                    // unknown module id
)

// String implements fmt.Stringer.
func (k CorruptionKind) String() string {
	switch k {
	case CorruptNone:
		return "none"
	case CorruptBadHeader:
		return "bad_header"
	case CorruptBadTimestamps:
		return "bad_timestamps"
	case CorruptEarlyDealloc:
		return "early_deallocation"
	case CorruptAfterEnd:
		return "activity_after_end"
	case CorruptNegativeCount:
		return "negative_counter"
	case CorruptInverted:
		return "inverted_timestamps"
	case CorruptBadModule:
		return "bad_module"
	default:
		return fmt.Sprintf("CorruptionKind(%d)", uint8(k))
	}
}

// ValidationError describes a corrupted trace.
type ValidationError struct {
	Kind   CorruptionKind
	Record int // index of the offending record, -1 for header problems
	Detail string
}

// Error implements the error interface.
func (e *ValidationError) Error() string {
	if e.Record < 0 {
		return fmt.Sprintf("darshan: corrupted trace (%s): %s", e.Kind, e.Detail)
	}
	return fmt.Sprintf("darshan: corrupted trace (%s) at record %d: %s", e.Kind, e.Record, e.Detail)
}

// Unwrap lets errors.Is(err, ErrCorrupted) succeed.
func (e *ValidationError) Unwrap() error { return ErrCorrupted }

func corrupt(kind CorruptionKind, record int, format string, args ...any) error {
	return &ValidationError{Kind: kind, Record: record, Detail: fmt.Sprintf(format, args...)}
}

// tsSlack absorbs clock skew between the job header end time and per-record
// timestamps; Darshan itself tolerates small drift between rank clocks.
const tsSlack = 1.0 // seconds

// Validate checks the structural integrity of a job and returns a
// *ValidationError (wrapping ErrCorrupted) describing the first problem
// found, or nil when the trace is usable.
func Validate(j *Job) error {
	if j == nil {
		return corrupt(CorruptBadHeader, -1, "nil job")
	}
	if j.Runtime <= 0 || math.IsNaN(j.Runtime) || math.IsInf(j.Runtime, 0) {
		return corrupt(CorruptBadHeader, -1, "runtime %g", j.Runtime)
	}
	if j.End < j.Start {
		return corrupt(CorruptBadHeader, -1, "end %d before start %d", j.End, j.Start)
	}
	if j.NProcs <= 0 {
		return corrupt(CorruptBadHeader, -1, "nprocs %d", j.NProcs)
	}
	for i := range j.Records {
		if err := validateRecord(&j.Records[i], i, j.Runtime); err != nil {
			return err
		}
	}
	return nil
}

func validateRecord(r *FileRecord, idx int, runtime float64) error {
	if !r.Module.Valid() {
		return corrupt(CorruptBadModule, idx, "module %d", r.Module)
	}
	c := &r.C
	for _, v := range []int64{c.Opens, c.Closes, c.Seeks, c.Stats, c.Reads, c.Writes, c.BytesRead, c.BytesWritten} {
		if v < 0 {
			return corrupt(CorruptNegativeCount, idx, "negative counter value %d", v)
		}
	}
	pairs := []struct {
		name       string
		start, end float64
		active     bool
	}{
		{"open", c.OpenStart, c.OpenEnd, c.Opens > 0},
		{"read", c.ReadStart, c.ReadEnd, c.HasRead()},
		{"write", c.WriteStart, c.WriteEnd, c.HasWrite()},
		{"close", c.CloseStart, c.CloseEnd, c.Closes > 0},
	}
	for _, p := range pairs {
		if math.IsNaN(p.start) || math.IsNaN(p.end) || math.IsInf(p.start, 0) || math.IsInf(p.end, 0) {
			return corrupt(CorruptBadTimestamps, idx, "%s timestamps not finite", p.name)
		}
		if !p.active {
			continue
		}
		if p.start < 0 || p.end < 0 {
			return corrupt(CorruptBadTimestamps, idx, "%s timestamps negative (%g, %g)", p.name, p.start, p.end)
		}
		if p.end < p.start {
			return corrupt(CorruptInverted, idx, "%s end %g before start %g", p.name, p.end, p.start)
		}
		if p.end > runtime+tsSlack {
			return corrupt(CorruptAfterEnd, idx, "%s ends at %g, runtime %g", p.name, p.end, runtime)
		}
	}
	if err := validateDXT(r, idx, runtime); err != nil {
		return err
	}
	// Early deallocation: the file was closed before its recorded I/O
	// finished. This is the paper's canonical corruption example.
	if c.Closes > 0 {
		if c.HasRead() && c.CloseEnd < c.ReadEnd {
			return corrupt(CorruptEarlyDealloc, idx, "closed at %g before read end %g", c.CloseEnd, c.ReadEnd)
		}
		if c.HasWrite() && c.CloseEnd < c.WriteEnd {
			return corrupt(CorruptEarlyDealloc, idx, "closed at %g before write end %g", c.CloseEnd, c.WriteEnd)
		}
	}
	return nil
}

// IsCorrupted reports whether err marks a corrupted trace.
func IsCorrupted(err error) bool { return errors.Is(err, ErrCorrupted) }
