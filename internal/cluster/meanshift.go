// Package cluster provides the clustering algorithms MOSAIC uses to group
// trace segments: Mean Shift (Fukunaga & Hostetler, the paper's choice)
// plus K-Means and grid-quantization baselines used in ablation
// experiments, and cluster-quality metrics.
package cluster

import (
	"errors"
	"fmt"
	"math"
)

// Point is a point in d-dimensional feature space. MOSAIC clusters
// segments in 2D: (duration, data volume), suitably scaled.
type Point []float64

// Dist2 returns the squared Euclidean distance between two points of the
// same dimension.
func Dist2(a, b Point) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Dist returns the Euclidean distance between two points.
func Dist(a, b Point) float64 { return math.Sqrt(Dist2(a, b)) }

// Kernel selects the Mean Shift kernel profile.
type Kernel uint8

// Supported kernels.
const (
	// FlatKernel weighs every neighbour within the bandwidth equally —
	// the classic "blurring" mean shift, and scikit-learn's default,
	// which the paper's implementation used.
	FlatKernel Kernel = iota
	// GaussianKernel weighs neighbours by exp(-d²/2h²).
	GaussianKernel
)

// String implements fmt.Stringer.
func (k Kernel) String() string {
	switch k {
	case FlatKernel:
		return "flat"
	case GaussianKernel:
		return "gaussian"
	default:
		return fmt.Sprintf("Kernel(%d)", uint8(k))
	}
}

// MeanShiftConfig parametrizes MeanShift.
type MeanShiftConfig struct {
	// Bandwidth is the kernel radius in feature-space units. It is the
	// threshold at which two segments are considered part of the same
	// periodic operation; the paper set it empirically on one month of
	// traces. Must be > 0.
	Bandwidth float64
	// Kernel selects the kernel profile (default FlatKernel).
	Kernel Kernel
	// MaxIter bounds the shift iterations per point (default 300,
	// matching scikit-learn).
	MaxIter int
	// Tol is the convergence threshold on shift displacement
	// (default Bandwidth * 1e-3).
	Tol float64
}

func (c *MeanShiftConfig) withDefaults() MeanShiftConfig {
	out := *c
	if out.MaxIter <= 0 {
		out.MaxIter = 300
	}
	if out.Tol <= 0 {
		out.Tol = out.Bandwidth * 1e-3
	}
	return out
}

// Result is a clustering outcome: Labels[i] gives the cluster of point i,
// Centers the converged cluster modes. Cluster ids are dense in
// [0, len(Centers)).
type Result struct {
	Labels  []int
	Centers []Point
}

// ClusterSizes returns the number of points per cluster id.
func (r *Result) ClusterSizes() []int {
	sizes := make([]int, len(r.Centers))
	for _, l := range r.Labels {
		if l >= 0 && l < len(sizes) {
			sizes[l]++
		}
	}
	return sizes
}

// ErrBadBandwidth reports a non-positive bandwidth.
var ErrBadBandwidth = errors.New("cluster: bandwidth must be positive")

// ErrDimensionMismatch reports points of unequal dimension.
var ErrDimensionMismatch = errors.New("cluster: points have mismatched dimensions")

func checkPoints(points []Point) error {
	if len(points) == 0 {
		return nil
	}
	d := len(points[0])
	for i, p := range points {
		if len(p) != d {
			return fmt.Errorf("%w: point %d has dim %d, want %d", ErrDimensionMismatch, i, len(p), d)
		}
		for _, v := range p {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("cluster: point %d has non-finite coordinate", i)
			}
		}
	}
	return nil
}

// MeanShift clusters the points by iteratively shifting each seed to the
// weighted mean of its kernel neighbourhood until convergence, then
// merging modes that lie within half a bandwidth of each other. Every
// input point is used as a seed (exact mean shift; the segment sets MOSAIC
// clusters are small after merging, so no binning seed strategy is
// needed).
func MeanShift(points []Point, cfg MeanShiftConfig) (*Result, error) {
	if cfg.Bandwidth <= 0 || math.IsNaN(cfg.Bandwidth) {
		return nil, ErrBadBandwidth
	}
	if err := checkPoints(points); err != nil {
		return nil, err
	}
	if len(points) == 0 {
		return &Result{}, nil
	}
	c := cfg.withDefaults()

	dim := len(points[0])
	modes := make([]Point, len(points))
	mean := make(Point, dim)
	for i, p := range points {
		cur := append(Point(nil), p...)
		for iter := 0; iter < c.MaxIter; iter++ {
			shiftKernelMean(cur, points, c, mean)
			if Dist(cur, mean) < c.Tol {
				copy(cur, mean)
				break
			}
			copy(cur, mean)
		}
		modes[i] = cur
	}
	return mergeModes(modes, c.Bandwidth), nil
}

// shiftKernelMean writes into out the kernel-weighted mean of points
// around center.
func shiftKernelMean(center Point, points []Point, c MeanShiftConfig, out Point) {
	for i := range out {
		out[i] = 0
	}
	h2 := c.Bandwidth * c.Bandwidth
	var wsum float64
	for _, p := range points {
		d2 := Dist2(center, p)
		var w float64
		switch c.Kernel {
		case GaussianKernel:
			w = math.Exp(-d2 / (2 * h2))
		default: // FlatKernel
			if d2 <= h2 {
				w = 1
			}
		}
		if w == 0 {
			continue
		}
		wsum += w
		for i := range out {
			out[i] += w * p[i]
		}
	}
	if wsum == 0 {
		// No neighbours (cannot happen with flat kernel since the point
		// itself is within the bandwidth, but guard anyway).
		copy(out, center)
		return
	}
	for i := range out {
		out[i] /= wsum
	}
}

// mergeModes collapses converged modes lying within bandwidth/2 of each
// other into single clusters and assigns labels.
func mergeModes(modes []Point, bandwidth float64) *Result {
	mergeR2 := (bandwidth / 2) * (bandwidth / 2)
	var centers []Point
	var weight []int
	labels := make([]int, len(modes))
	for i, m := range modes {
		assigned := -1
		for ci, ctr := range centers {
			if Dist2(m, ctr) <= mergeR2 {
				assigned = ci
				break
			}
		}
		if assigned < 0 {
			centers = append(centers, append(Point(nil), m...))
			weight = append(weight, 0)
			assigned = len(centers) - 1
		} else {
			// Running average keeps the center representative of its
			// members rather than of the first mode found.
			w := float64(weight[assigned])
			ctr := centers[assigned]
			for k := range ctr {
				ctr[k] = (ctr[k]*w + m[k]) / (w + 1)
			}
		}
		weight[assigned]++
		labels[i] = assigned
	}
	return &Result{Labels: labels, Centers: centers}
}

// EstimateBandwidth returns a data-driven bandwidth: the given quantile
// (in [0,1], e.g. 0.3 like scikit-learn's estimate_bandwidth) of all
// pairwise distances. Returns 0 for fewer than two points; callers should
// then fall back to a configured default.
func EstimateBandwidth(points []Point, quantile float64) float64 {
	n := len(points)
	if n < 2 {
		return 0
	}
	dists := make([]float64, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dists = append(dists, Dist(points[i], points[j]))
		}
	}
	// Percentile via partial sort would be fancier; n is small here.
	sortFloat64s(dists)
	if quantile <= 0 {
		return dists[0]
	}
	if quantile >= 1 {
		return dists[len(dists)-1]
	}
	idx := int(quantile * float64(len(dists)-1))
	return dists[idx]
}

func sortFloat64s(xs []float64) {
	// insertion sort is fine for the small slices seen here, but use the
	// stdlib for robustness on large ablation sweeps.
	sortFloats(xs)
}
