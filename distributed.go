package mosaic

import (
	"net"
	"time"

	"github.com/mosaic-hpc/mosaic/internal/dist"
	"github.com/mosaic-hpc/mosaic/internal/ring"
)

// Distributed categorization, re-exported: a master streams traces to
// workers over net/rpc, the role Dispy played for the paper's Python
// implementation.
type (
	// WorkerClient is a connection to one categorization worker.
	WorkerClient = dist.Client
	// Master fans traces out over a set of workers.
	Master = dist.Master
	// Outcome is the per-trace result returned by a Master run.
	Outcome = dist.Outcome
)

// ServeWorker serves categorization requests on the listener until it is
// closed. It blocks; run it in a goroutine (or use the mosaic-worker
// binary on remote hosts).
func ServeWorker(l net.Listener) error { return dist.Serve(l) }

// ListenAndServeWorker serves on a TCP address. It blocks.
func ListenAndServeWorker(addr string) error { return dist.ListenAndServe(addr) }

// DialWorker connects to a worker.
func DialWorker(addr string) (*WorkerClient, error) { return dist.Dial(addr) }

// NewMaster wraps worker connections with a pipeline configuration.
func NewMaster(clients []*WorkerClient, cfg Config) *Master {
	return dist.NewMaster(clients, cfg)
}

// Cluster subsystem, re-exported: the consistent-hash routing table and
// static membership of a sharded, replicated serve tier (see
// internal/ring and the serve package's cluster mode), plus the frame
// transport the whole cluster — remote categorization included —
// speaks.
type (
	// ClusterNode is one member of a cluster's static membership.
	ClusterNode = ring.Node
	// ClusterTable is the deterministic consistent-hash routing table.
	ClusterTable = ring.Table
	// ClusterConfig configures one node of a clustered serve tier.
	ClusterConfig = ring.Config
)

// NewClusterTable builds the routing table for a membership. vnodes and
// rf fall back to ring defaults when <= 0.
func NewClusterTable(nodes []ClusterNode, vnodes, rf int) (*ClusterTable, error) {
	return ring.NewTable(nodes, vnodes, rf)
}

// ServeFrameWorker serves categorization requests over the cluster's
// binary frame transport until the listener closes. It blocks.
func ServeFrameWorker(l net.Listener) error { return dist.ServeFrame(l) }

// DialFrameWorker connects to a frame-transport worker (lazily; timeout
// bounds dial and each call, <= 0 means 10s).
func DialFrameWorker(addr string, timeout time.Duration) *WorkerClient {
	return dist.DialFrame(addr, timeout)
}
