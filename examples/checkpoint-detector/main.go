// Checkpoint detector: synthesize a LAMMPS-like checkpointing application
// with the workload generator, run MOSAIC's periodicity detection, and
// compare the detected checkpoint cadence against the generator's ground
// truth — the way a burst-buffer or scheduler plugin would consume the
// library.
//
//	go run ./examples/checkpoint-detector
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strconv"

	"github.com/mosaic-hpc/mosaic"
)

func main() {
	arch, ok := mosaic.ArchetypeByName("checkpointer-minute")
	if !ok {
		log.Fatal("archetype not found")
	}
	cfg := mosaic.DefaultConfig()

	fmt.Println("seed  truth-period  detected-period  occurrences  busy  magnitude")
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		params := arch.Params(rng)
		b := mosaic.NewTraceBuilder(rng, "bob", arch.Exe, uint64(seed), params.Ranks, params.RuntimeBase)
		arch.Build(b, params)
		job := b.Job()

		res, err := mosaic.Categorize(job, cfg)
		if err != nil {
			log.Fatal(err)
		}
		truth, _ := strconv.ParseFloat(job.Metadata["mosaic.truth.period"], 64)
		if !res.Write.Periodic() {
			fmt.Printf("%4d  %9.0fs  NOT DETECTED\n", seed, truth)
			continue
		}
		g := res.Write.Groups[0]
		fmt.Printf("%4d  %9.0fs  %13.0fs  %11d  %4.0f%%  %s\n",
			seed, truth, g.Period, g.Count, g.BusyRatio*100, g.Magnitude)
	}

	fmt.Println("\nA scheduler can use the detected cadence to pre-stage burst-buffer")
	fmt.Println("capacity just before each checkpoint window, or to offset two")
	fmt.Println("periodic writers so their I/O phases never collide.")
}
