package index

import (
	"math"
	"sync"
)

// A compiled query plan. Plans bind term nodes to dense category IDs
// (static for the closed canonical set), flatten the left-associative
// parse tree into n-ary AND/OR nodes so the evaluator can reorder
// operands by selectivity, and are immutable after compile — safe to
// cache globally and share across goroutines and Index instances.

const (
	pTerm = iota
	pAnd
	pOr
	pNot
)

type planNode struct {
	kind int
	cats []uint16    // pTerm
	kids []*planNode // pAnd, pOr; pNot uses kids[0]
}

func compile(n node) *planNode {
	switch t := n.(type) {
	case termNode:
		cats := make([]uint16, 0, len(t.cats))
		for _, c := range t.cats {
			if id, ok := lookupCatID(c); ok {
				cats = append(cats, id)
			}
		}
		return &planNode{kind: pTerm, cats: cats}
	case andNode:
		return flatten(pAnd, compile(t.l), compile(t.r))
	case orNode:
		return flatten(pOr, compile(t.l), compile(t.r))
	case notNode:
		return &planNode{kind: pNot, kids: []*planNode{compile(t.n)}}
	}
	return &planNode{kind: pTerm} // unreachable
}

// flatten splices same-kind children so "a AND b AND c" becomes one
// 3-ary AND instead of a left-leaning chain.
func flatten(kind int, l, r *planNode) *planNode {
	kids := make([]*planNode, 0, 4)
	for _, k := range [2]*planNode{l, r} {
		if k.kind == kind {
			kids = append(kids, k.kids...)
		} else {
			kids = append(kids, k)
		}
	}
	return &planNode{kind: kind, kids: kids}
}

// estimate upper-bounds the result cardinality against one
// generation; the evaluator orders AND operands by it.
func (p *planNode) estimate(g *generation) int {
	switch p.kind {
	case pTerm:
		s := 0
		for _, c := range p.cats {
			s += len(g.posting(c))
		}
		return s
	case pAnd:
		m := math.MaxInt
		for _, k := range p.kids {
			if e := k.estimate(g); e < m {
				m = e
			}
		}
		return m
	case pOr:
		s := 0
		for _, k := range p.kids {
			s += k.estimate(g)
			if s >= g.n() {
				return g.n()
			}
		}
		return s
	default: // pNot
		if e := g.n() - p.kids[0].estimate(g); e > 0 {
			return e
		}
		return 0
	}
}

// evalSet is a lazily-negated sorted ordinal set: when neg is set the
// value is the complement of list against [0, g.n()). owned marks
// lists that came from scratch and must go back.
type evalSet struct {
	list  []uint32
	neg   bool
	owned bool
}

func (sc *scratch) release(s evalSet) {
	if s.owned {
		sc.put(s.list)
	}
}

// eval runs the plan against one immutable generation. All
// intermediates live in pooled scratch buffers.
func (p *planNode) eval(g *generation, sc *scratch) evalSet {
	switch p.kind {
	case pTerm:
		if len(p.cats) == 0 {
			return evalSet{}
		}
		acc := evalSet{list: g.posting(p.cats[0])}
		for _, c := range p.cats[1:] {
			acc = evalOr(acc, evalSet{list: g.posting(c)}, sc)
		}
		return acc
	case pNot:
		s := p.kids[0].eval(g, sc)
		s.neg = !s.neg
		return s
	case pAnd:
		kids := p.ordered(g, sc)
		acc := kids[0].eval(g, sc)
		for _, k := range kids[1:] {
			if !acc.neg && len(acc.list) == 0 {
				break // provably empty; skip remaining operands
			}
			acc = evalAnd(acc, k.eval(g, sc), sc)
		}
		return acc
	default: // pOr
		acc := p.kids[0].eval(g, sc)
		for _, k := range p.kids[1:] {
			if acc.neg && len(acc.list) == 0 {
				break // provably the full universe
			}
			acc = evalOr(acc, k.eval(g, sc), sc)
		}
		return acc
	}
}

// ordered returns AND operands sorted by ascending estimate, using
// scratch so reordering never mutates the shared plan. The returned
// slice is valid until the next ordered call on the same scratch, so
// callers must copy nothing out of it after recursing — eval consumes
// it immediately via index iteration, which is safe because nested
// ordered calls only ever extend the backing slices.
func (p *planNode) ordered(g *generation, sc *scratch) []*planNode {
	base := len(sc.nodes)
	for _, k := range p.kids {
		sc.nodes = append(sc.nodes, k)
		sc.ests = append(sc.ests, k.estimate(g))
	}
	nodes, ests := sc.nodes[base:], sc.ests[base:]
	for i := 1; i < len(nodes); i++ {
		for j := i; j > 0 && ests[j] < ests[j-1]; j-- {
			ests[j], ests[j-1] = ests[j-1], ests[j]
			nodes[j], nodes[j-1] = nodes[j-1], nodes[j]
		}
	}
	return nodes
}

// evalAnd combines two lazily-negated sets under AND (De Morgan on
// the negated cases keeps everything a positive-list operation).
func evalAnd(a, b evalSet, sc *scratch) evalSet {
	dst := sc.get()
	var out evalSet
	switch {
	case !a.neg && !b.neg:
		out = evalSet{list: intersectInto(dst, a.list, b.list), owned: true}
	case !a.neg && b.neg:
		out = evalSet{list: subtractInto(dst, a.list, b.list), owned: true}
	case a.neg && !b.neg:
		out = evalSet{list: subtractInto(dst, b.list, a.list), owned: true}
	default: // ¬a ∧ ¬b = ¬(a ∪ b)
		out = evalSet{list: unionInto(dst, a.list, b.list), neg: true, owned: true}
	}
	sc.release(a)
	sc.release(b)
	return out
}

// evalOr is the dual.
func evalOr(a, b evalSet, sc *scratch) evalSet {
	dst := sc.get()
	var out evalSet
	switch {
	case !a.neg && !b.neg:
		out = evalSet{list: unionInto(dst, a.list, b.list), owned: true}
	case !a.neg && b.neg: // a ∨ ¬b = ¬(b \ a)
		out = evalSet{list: subtractInto(dst, b.list, a.list), neg: true, owned: true}
	case a.neg && !b.neg:
		out = evalSet{list: subtractInto(dst, a.list, b.list), neg: true, owned: true}
	default: // ¬a ∨ ¬b = ¬(a ∩ b)
		out = evalSet{list: intersectInto(dst, a.list, b.list), neg: true, owned: true}
	}
	sc.release(a)
	sc.release(b)
	return out
}

// matches evaluates the plan directly against one small category set
// — the delta-overlay path, where unfolded mutations are checked one
// trace at a time instead of through postings.
func (p *planNode) matches(cats []uint16) bool {
	switch p.kind {
	case pTerm:
		for _, c := range p.cats {
			if containsCat(cats, c) {
				return true
			}
		}
		return false
	case pNot:
		return !p.kids[0].matches(cats)
	case pAnd:
		for _, k := range p.kids {
			if !k.matches(cats) {
				return false
			}
		}
		return true
	default: // pOr
		for _, k := range p.kids {
			if k.matches(cats) {
				return true
			}
		}
		return false
	}
}

// planCache memoizes compiled plans by query string. Category-ID
// binding only depends on the closed canonical set, so plans are
// valid process-wide; the cache flushes wholesale when adversarial
// unique-query traffic (fuzzing, scans) fills it.
var planCache = struct {
	sync.RWMutex
	m map[string]*planNode
}{m: make(map[string]*planNode)}

const planCacheMax = 4096

func compileQuery(q string) (*planNode, error) {
	planCache.RLock()
	p := planCache.m[q]
	planCache.RUnlock()
	if p != nil {
		return p, nil
	}
	root, err := parseQuery(q)
	if err != nil {
		return nil, err
	}
	p = compile(root)
	planCache.Lock()
	if len(planCache.m) >= planCacheMax {
		clear(planCache.m)
	}
	planCache.m[q] = p
	planCache.Unlock()
	return p, nil
}
