package reqtrace

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// completedTrace builds and finalizes one trace with a small span tree.
func completedTrace(rec *Recorder, route string, status int, spanDur time.Duration) *Trace {
	start := time.Now().Add(-spanDur - time.Millisecond)
	tr := New(StartOptions{Method: "POST", Route: route, Start: start, OnDone: rec.Complete})
	tr.AddCompleted(tr.Root(), "queue.wait", start, spanDur/2)
	tr.AddCompleted(tr.Root(), "store.commit", start.Add(spanDur/2), spanDur/2)
	tr.FinishRoot(status)
	return tr
}

func TestRingWraparound(t *testing.T) {
	rec := NewRecorder(RecorderConfig{Capacity: 4})
	var traces []*Trace
	for i := 0; i < 10; i++ {
		traces = append(traces, completedTrace(rec, fmt.Sprintf("/r%d", i), 200, time.Millisecond))
	}
	sums := rec.Recent(0)
	if len(sums) != 4 {
		t.Fatalf("retained %d, want ring capacity 4", len(sums))
	}
	// Newest first: traces 9, 8, 7, 6.
	for i, s := range sums {
		want := traces[9-i].ID().String()
		if s.Trace != want {
			t.Fatalf("slot %d = %s, want %s", i, s.Trace, want)
		}
	}
	if rec.Recorded() != 10 {
		t.Fatalf("recorded = %d, want 10", rec.Recorded())
	}
	// Rotated-out traces are gone; retained ones resolvable.
	if _, ok := rec.Get(traces[0].ID().String()); ok {
		t.Fatal("rotated-out trace still resolvable")
	}
	if _, ok := rec.Get(traces[9].ID().String()); !ok {
		t.Fatal("retained trace not resolvable")
	}
}

func TestRecentLimit(t *testing.T) {
	rec := NewRecorder(RecorderConfig{Capacity: 8})
	for i := 0; i < 5; i++ {
		completedTrace(rec, "/x", 200, time.Millisecond)
	}
	if got := len(rec.Recent(2)); got != 2 {
		t.Fatalf("Recent(2) = %d rows", got)
	}
	if got := len(rec.Recent(100)); got != 5 {
		t.Fatalf("Recent(100) = %d rows", got)
	}
}

func TestConcurrentRecordAndDump(t *testing.T) {
	dir := t.TempDir()
	rec := NewRecorder(RecorderConfig{
		Capacity: 16, Dir: dir, SlowThreshold: time.Nanosecond, MaxDumps: 1000,
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				completedTrace(rec, fmt.Sprintf("/g%d", g), 200, time.Millisecond)
			}
		}(g)
	}
	// Readers race the writers.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				for _, s := range rec.Recent(5) {
					rec.Get(s.Trace)
				}
			}
		}()
	}
	wg.Wait()
	if rec.Recorded() != 160 {
		t.Fatalf("recorded = %d, want 160", rec.Recorded())
	}
	if rec.Dumps() == 0 {
		t.Fatal("slow threshold of 1ns dumped nothing")
	}
	if rec.DumpErrors() != 0 {
		t.Fatalf("dump errors = %d", rec.DumpErrors())
	}
}

// chromeDump is the subset of the Chrome trace-event schema the tests
// assert on.
type chromeDump struct {
	TraceEvents []struct {
		Name string            `json:"name"`
		Ph   string            `json:"ph"`
		Dur  float64           `json:"dur"`
		Args map[string]string `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func TestSlowDumpGolden(t *testing.T) {
	dir := t.TempDir()
	rec := NewRecorder(RecorderConfig{Capacity: 4, Dir: dir, SlowThreshold: time.Nanosecond})
	tr := completedTrace(rec, "/v1/traces", 202, 2*time.Millisecond)

	path := filepath.Join(dir, "req-"+tr.ID().String()+".trace.json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("expected dump at %s: %v", path, err)
	}
	var doc chromeDump
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	names := map[string]bool{}
	var rootArgs map[string]string
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			names[ev.Name] = true
			if ev.Name == "POST /v1/traces" {
				rootArgs = ev.Args
			}
		}
	}
	for _, want := range []string{"POST /v1/traces", "queue.wait", "store.commit"} {
		if !names[want] {
			t.Errorf("dump missing span %q (have %v)", want, names)
		}
	}
	if rootArgs["trace_id"] != tr.ID().String() {
		t.Fatalf("root args missing trace_id: %v", rootArgs)
	}
}

func TestErrorDumpAndMaxDumps(t *testing.T) {
	dir := t.TempDir()
	rec := NewRecorder(RecorderConfig{Capacity: 8, Dir: dir, MaxDumps: 2})
	// Healthy request, no threshold: no dump.
	completedTrace(rec, "/ok", 200, time.Millisecond)
	if rec.Dumps() != 0 {
		t.Fatal("healthy request dumped without a slow threshold")
	}
	// Errored requests dump — but only up to MaxDumps.
	for i := 0; i < 5; i++ {
		completedTrace(rec, "/boom", 500, time.Millisecond)
	}
	if rec.Dumps() != 2 {
		t.Fatalf("dumps = %d, want MaxDumps cap of 2", rec.Dumps())
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 2 {
		t.Fatalf("%d files on disk, want 2", len(ents))
	}
}

func TestDebugRequestsHandler(t *testing.T) {
	rec := NewRecorder(RecorderConfig{Capacity: 8})
	tr := completedTrace(rec, "/v1/traces", 202, time.Millisecond)
	srv := httptest.NewServer(rec.Handler())
	defer srv.Close()

	get := func(path string) (int, string) {
		r, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := r.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return r.StatusCode, b.String()
	}

	code, body := get("/debug/requests")
	if code != 200 {
		t.Fatalf("list: status %d", code)
	}
	var doc RequestsDoc
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("list is not JSON: %v", err)
	}
	if doc.Count != 1 || len(doc.Requests) != 1 {
		t.Fatalf("list count = %d/%d", doc.Count, len(doc.Requests))
	}
	row := doc.Requests[0]
	if row.Trace != tr.ID().String() || row.Status != 202 || row.Method != "POST" {
		t.Fatalf("row = %+v", row)
	}
	if row.Phases["queue.wait"] <= 0 || row.Phases["store.commit"] <= 0 {
		t.Fatalf("phase breakdown missing: %v", row.Phases)
	}

	code, body = get("/debug/requests?format=text")
	if code != 200 || !strings.Contains(body, "queue.wait=") {
		t.Fatalf("text table: status %d body %q", code, body)
	}

	code, body = get("/debug/requests/" + tr.ID().String())
	if code != 200 {
		t.Fatalf("detail: status %d", code)
	}
	var det Detail
	if err := json.Unmarshal([]byte(body), &det); err != nil {
		t.Fatalf("detail is not JSON: %v", err)
	}
	if len(det.SpanTree) != 3 {
		t.Fatalf("span tree has %d spans, want 3", len(det.SpanTree))
	}
	if _, _, ok := ParseTraceparent(det.Traceparent); !ok {
		t.Fatalf("detail traceparent invalid: %s", det.Traceparent)
	}

	if code, _ = get("/debug/requests/" + strings.Repeat("0", 32)); code != 404 {
		t.Fatalf("unknown id: status %d, want 404", code)
	}
	if code, _ = get("/debug/requests?limit=bogus"); code != 400 {
		t.Fatalf("bad limit: status %d, want 400", code)
	}
}
