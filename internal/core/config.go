// Package core implements the MOSAIC categorization pipeline (Figure 1 of
// the paper): trace validation and deduplication, merging of I/O
// operations, and the three detectors — periodicity (segmentation + Mean
// Shift), temporality (temporal chunks) and metadata impact (request-rate
// analysis).
package core

import (
	"github.com/mosaic-hpc/mosaic/internal/cluster"
	"github.com/mosaic-hpc/mosaic/internal/interval"
)

// Config gathers every threshold of the method. The zero value is not
// usable; start from DefaultConfig, which encodes the values of the paper,
// and override as needed ("the threshold can be modified in MOSAIC to
// extend or narrow the amount of I/O activities to categorize").
type Config struct {
	// SignificanceBytes is the minimum read (resp. written) volume for a
	// trace to be characterized on that direction; below it the trace is
	// {read,write}_insignificant. Paper: 100 MB, determined
	// experimentally on the Blue Waters dataset.
	SignificanceBytes int64

	// Merging thresholds (Section III-B2b): a gap is negligible when
	// shorter than MergeRuntimeFraction of the execution or
	// MergeNeighborFraction of the adjacent merged operation.
	MergeRuntimeFraction  float64
	MergeNeighborFraction float64

	// Temporality (Section III-B3b).
	ChunkCount      int     // number of equal temporal chunks (paper: 4)
	DominanceFactor float64 // chunk dominates when > factor × every other chunk (paper: 2)
	SteadyCV        float64 // coefficient of variation below which volumes are steady (paper: 0.25)

	// Periodicity (Section III-B3a). PeriodicityDetector selects the
	// algorithm: the paper's segmentation + Mean Shift (default), the
	// frequency-technique baseline, or a hybrid (the paper's stated
	// future work).
	PeriodicityDetector PeriodicityDetector
	MeanShiftBandwidth  float64        // feature-space bandwidth
	MeanShiftKernel     cluster.Kernel // kernel profile
	MinGroupSize        int            // cluster size strictly greater than 1 → periodic
	MinGroupCoverage    float64        // fraction of runtime a group must span
	VolumeLogScale      float64        // volume feature scaling

	// DisableDXT ignores DXT extended-tracing segments even when a trace
	// carries them, reproducing the aggregated-only view of the Blue
	// Waters corpus. The dxt experiment uses this to quantify how much
	// periodicity the aggregation hides (the paper's Section IV-A caveat).
	DisableDXT bool

	// Metadata impact (Section III-B3c). Rates are requests per second;
	// thresholds derive from MDWorkbench measurements on Mistral (a
	// Lustre system similar to Blue Waters, saturating around 3000
	// req/s).
	SpikeHighRate  float64 // high spike: at least one second above this (paper: 250)
	SpikeRate      float64 // spike: one second above this (paper: 50)
	MultipleSpikes int     // multiple_spikes: at least this many spikes (paper: 5)
	DensityRate    float64 // high_density: average rate over the run (paper: 50)
}

// DefaultConfig returns the thresholds used in the paper's evaluation.
func DefaultConfig() Config {
	return Config{
		SignificanceBytes:     100 << 20, // 100 MB
		MergeRuntimeFraction:  0.001,
		MergeNeighborFraction: 0.01,
		ChunkCount:            4,
		DominanceFactor:       2,
		SteadyCV:              0.25,
		MeanShiftBandwidth:    0.05,
		MeanShiftKernel:       cluster.FlatKernel,
		MinGroupSize:          2,
		MinGroupCoverage:      0.5,
		VolumeLogScale:        64,
		SpikeHighRate:         250,
		SpikeRate:             50,
		MultipleSpikes:        5,
		DensityRate:           50,
	}
}

// IsZero reports whether the config is entirely unset, i.e. the caller
// never chose thresholds and the defaults should apply. Each field is
// checked explicitly — never compare Config values with == here: that
// silently breaks (or stops compiling) the moment Config grows a
// non-comparable field, and a partially-filled config must NOT be
// treated as zero.
func (c Config) IsZero() bool {
	return c.SignificanceBytes == 0 &&
		c.MergeRuntimeFraction == 0 &&
		c.MergeNeighborFraction == 0 &&
		c.ChunkCount == 0 &&
		c.DominanceFactor == 0 &&
		c.SteadyCV == 0 &&
		c.PeriodicityDetector == 0 &&
		c.MeanShiftBandwidth == 0 &&
		c.MeanShiftKernel == 0 &&
		c.MinGroupSize == 0 &&
		c.MinGroupCoverage == 0 &&
		c.VolumeLogScale == 0 &&
		!c.DisableDXT &&
		c.SpikeHighRate == 0 &&
		c.SpikeRate == 0 &&
		c.MultipleSpikes == 0 &&
		c.DensityRate == 0
}

// Normalized is the single config-normalization point of the pipeline
// (the engine boundary): a zero config becomes DefaultConfig, and any
// config is sane-clamped so partially filled values cannot crash the
// detectors. Categorize applies the same clamps internally, so
// normalizing early never changes results.
func (c Config) Normalized() Config {
	if c.IsZero() {
		return DefaultConfig()
	}
	return c.sane()
}

// neighborPolicy adapts the merge thresholds to the interval package.
func (c *Config) neighborPolicy() interval.NeighborPolicy {
	return interval.NeighborPolicy{
		RuntimeFraction:  c.MergeRuntimeFraction,
		NeighborFraction: c.MergeNeighborFraction,
	}
}

// sane clamps obviously broken values so that a partially filled Config
// cannot crash the pipeline; tests cover each clamp.
func (c Config) sane() Config {
	if c.ChunkCount < 2 {
		c.ChunkCount = 4
	}
	if c.DominanceFactor <= 1 {
		c.DominanceFactor = 2
	}
	if c.SteadyCV <= 0 {
		c.SteadyCV = 0.25
	}
	if c.MeanShiftBandwidth <= 0 {
		c.MeanShiftBandwidth = 0.05
	}
	if c.MinGroupSize < 2 {
		c.MinGroupSize = 2
	}
	if c.SpikeHighRate <= 0 {
		c.SpikeHighRate = 250
	}
	if c.SpikeRate <= 0 {
		c.SpikeRate = 50
	}
	if c.MultipleSpikes <= 0 {
		c.MultipleSpikes = 5
	}
	if c.DensityRate <= 0 {
		c.DensityRate = 50
	}
	return c
}
