// Package benchsuite defines the pinned benchmarks behind MOSAIC's
// performance regression gate. The same functions back two entry points:
// the `go test -bench` targets in internal/cluster and the repo root, and
// `mosaic-bench -bench-json`, which runs them through testing.Benchmark
// and records the results in the committed BENCH_*.json baselines that CI
// compares fresh runs against.
//
// Pinned names are stable identifiers — renaming one silently drops it
// from the regression gate, so don't.
package benchsuite

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"github.com/mosaic-hpc/mosaic"
	"github.com/mosaic-hpc/mosaic/internal/benchio"
	"github.com/mosaic-hpc/mosaic/internal/cluster"
	"github.com/mosaic-hpc/mosaic/internal/core"
	"github.com/mosaic-hpc/mosaic/internal/darshan"
	"github.com/mosaic-hpc/mosaic/internal/experiments"
	"github.com/mosaic-hpc/mosaic/internal/gen"
	"github.com/mosaic-hpc/mosaic/internal/store"
)

// Result file names at the repository root.
const (
	MeanShiftFile = "BENCH_meanshift.json"
	PipelineFile  = "BENCH_pipeline.json"
	IngestFile    = "BENCH_ingest.json"
	ServeFile     = "BENCH_serve.json"
	ClusterFile   = "BENCH_cluster.json"
	QueryFile     = "BENCH_query.json"
)

// Files lists every baseline file produced by the pinned targets; the
// bench gate iterates this, so a new baseline file only needs to be
// added here.
func Files() []string {
	return []string{MeanShiftFile, PipelineFile, IngestFile, ServeFile, ClusterFile, QueryFile}
}

// Target is one pinned benchmark: its stable name, the baseline file it
// belongs to, and the benchmark body.
type Target struct {
	Name string // e.g. "BenchmarkMeanShift/n=5k/binned"
	File string // MeanShiftFile or PipelineFile
	Fn   func(b *testing.B)
}

// pointsSeed pins the synthetic clustering workload; the dataset is a
// pure function of n.
const pointsSeed = 42

// Points returns the deterministic clustering workload used by every
// MeanShift benchmark: six Gaussian blobs plus 20% uniform noise in
// [0,1]², the shape of a segment feature space with several interleaved
// periodic operations.
func Points(n int) []cluster.Point {
	rng := rand.New(rand.NewSource(pointsSeed))
	const k = 6
	centers := make([]cluster.Point, k)
	for i := range centers {
		centers[i] = cluster.Point{rng.Float64(), rng.Float64()}
	}
	pts := make([]cluster.Point, n)
	for i := range pts {
		if rng.Float64() < 0.2 {
			pts[i] = cluster.Point{rng.Float64(), rng.Float64()}
			continue
		}
		c := centers[rng.Intn(k)]
		pts[i] = cluster.Point{
			c[0] + rng.NormFloat64()*0.02,
			c[1] + rng.NormFloat64()*0.02,
		}
	}
	return pts
}

// meanShiftBench returns a benchmark body clustering Points(n) with the
// given configuration (bandwidth 0.05, scratch reuse across iterations).
func meanShiftBench(n int, cfg cluster.MeanShiftConfig) func(*testing.B) {
	return func(b *testing.B) {
		pts := Points(n)
		cfg.Bandwidth = 0.05
		cfg.Scratch = cluster.NewScratch()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := cluster.MeanShift(pts, cfg)
			if err != nil || len(res.Centers) == 0 {
				b.Fatalf("centers=%d err=%v", len(res.Centers), err)
			}
		}
	}
}

// Size is one pinned input scale.
type Size struct {
	Label string
	N     int
}

// Mode is one pinned MeanShift configuration.
type Mode struct {
	Label string
	Cfg   cluster.MeanShiftConfig
}

// MeanShiftSizes lists the pinned input scales.
func MeanShiftSizes() []Size {
	return []Size{{"1k", 1000}, {"5k", 5000}, {"20k", 20000}}
}

// MeanShiftModes lists the pinned configurations per scale. The exact
// reference path is only pinned up to 5k — at 20k the O(n²·iters) scan is
// too slow to gate CI on.
func MeanShiftModes(n int) []Mode {
	var modes []Mode
	if n <= 5000 {
		modes = append(modes, Mode{"exact", cluster.MeanShiftConfig{Exact: true}})
	}
	return append(modes,
		Mode{"grid", cluster.MeanShiftConfig{}},
		Mode{"binned", cluster.MeanShiftConfig{BinSeeding: true}},
	)
}

// corpusJobs lazily builds the small deduplicated corpus the pipeline
// benchmarks categorize (one representative run per app, 120 apps).
var corpusJobs = sync.OnceValue(func() []*mosaic.Job {
	corpus := gen.Plan(experiments.ScaledProfile(1, 120))
	jobs := make([]*mosaic.Job, 0, len(corpus.Apps))
	for _, app := range corpus.Apps {
		jobs = append(jobs, corpus.GenerateRun(app, 0).Job)
	}
	return jobs
})

// CategorizeSingle measures the full per-trace pipeline on the flagship
// checkpointing trace (pinned as BenchmarkCategorizeSingle).
func CategorizeSingle(b *testing.B) {
	arch, ok := gen.ArchetypeByName("checkpointer-minute")
	if !ok {
		b.Fatal("checkpointer-minute archetype missing")
	}
	rng := rand.New(rand.NewSource(1))
	p := arch.Params(rng)
	builder := gen.NewBuilder(rng, "u", arch.Exe, 1, p.Ranks, p.RuntimeBase)
	arch.Build(builder, p)
	job := builder.Job()
	cfg := core.DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Categorize(job, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// PipelineParallel measures corpus categorization throughput at the given
// worker count (pinned as BenchmarkPipelineParallel/4workers).
func PipelineParallel(workers int) func(b *testing.B) {
	return func(b *testing.B) {
		jobs := corpusJobs()
		cfg := core.DefaultConfig()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := mosaic.CategorizeAll(context.Background(), jobs, mosaic.Options{Config: cfg, Workers: workers}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// ingestTrace builds the pinned decode/encode workload: a deterministic
// 200-record trace with metadata and DXT segments on the heavy records,
// the shape of a mid-size production Darshan log.
var ingestTrace = sync.OnceValue(func() *darshan.Job {
	rng := rand.New(rand.NewSource(pointsSeed))
	j := &darshan.Job{
		JobID:   987654,
		UID:     1001,
		User:    "benchuser",
		Exe:     "/apps/climate/cam6.exe",
		NProcs:  512,
		Start:   1_700_000_000,
		End:     1_700_003_600,
		Runtime: 3600,
		Metadata: map[string]string{
			"jobid": "987654", "lib_ver": "3.4.4", "host": "h0001",
		},
	}
	mods := []darshan.Module{darshan.ModPOSIX, darshan.ModMPIIO, darshan.ModSTDIO}
	j.Records = make([]darshan.FileRecord, 200)
	for i := range j.Records {
		r := &j.Records[i]
		r.Module = mods[i%len(mods)]
		r.Path = fmt.Sprintf("/scratch/run42/out.%04d.nc", i)
		r.Rank = int32(i % 64)
		r.C = darshan.Counters{
			Opens: int64(1 + i%4), Closes: int64(1 + i%4),
			Reads: int64(rng.Intn(500)), Writes: int64(rng.Intn(2000)),
			BytesRead: int64(rng.Intn(1 << 24)), BytesWritten: int64(rng.Intn(1 << 26)),
			OpenStart: 1, OpenEnd: 2,
			ReadStart: 5, ReadEnd: 120,
			WriteStart: 130, WriteEnd: 3400,
			CloseStart: 3500, CloseEnd: 3590,
		}
		if i%10 == 0 { // every tenth record carries DXT segments
			r.DXTWrites = make([]darshan.DXTEvent, 16)
			for k := range r.DXTWrites {
				r.DXTWrites[k] = darshan.DXTEvent{
					Start: float64(130 + k), End: float64(131 + k),
					Offset: int64(k) << 20, Length: 1 << 20,
				}
			}
		}
	}
	return j
})

// IngestDecodeWarm is the warm single-trace decode hot path: DecodeInto
// reusing one Job's record, DXT and metadata storage across iterations,
// parsing straight from the raw blob (pinned as
// BenchmarkIngest/decode_warm).
func IngestDecodeWarm(b *testing.B) {
	blob, err := darshan.MarshalBinary(ingestTrace())
	if err != nil {
		b.Fatal(err)
	}
	var j darshan.Job
	b.SetBytes(int64(len(blob)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := darshan.DecodeInto(&j, blob); err != nil {
			b.Fatal(err)
		}
	}
}

// IngestDecodeGzip decodes the at-rest .mosd encoding (gzip body) with
// pooled inflate state (pinned as BenchmarkIngest/decode_gzip).
func IngestDecodeGzip(b *testing.B) {
	var buf bytes.Buffer
	if err := darshan.WriteBinary(&buf, ingestTrace()); err != nil {
		b.Fatal(err)
	}
	blob := buf.Bytes()
	var j darshan.Job
	b.SetBytes(int64(len(blob)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := darshan.DecodeInto(&j, blob); err != nil {
			b.Fatal(err)
		}
	}
}

// IngestEncode is the canonical encode path with a reused destination
// buffer (pinned as BenchmarkIngest/encode).
func IngestEncode(b *testing.B) {
	j := ingestTrace()
	buf, err := darshan.MarshalBinary(j)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err = darshan.AppendEncode(buf[:0], j)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// IngestStoreAppend measures the segment-log append path: content
// addressing, framing, CRC and the buffered write, without fsync
// (pinned as BenchmarkIngest/store_append). Distinct content per
// iteration comes from rewriting the JobID bytes in place — offset 8,
// the first body field after the 8-byte header.
func IngestStoreAppend(b *testing.B) {
	st, err := store.Open(b.TempDir(), store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	j := &darshan.Job{JobID: 1, NProcs: 8, Runtime: 100,
		Records: []darshan.FileRecord{{Module: darshan.ModPOSIX, Path: "/scratch/x", Rank: -1,
			C: darshan.Counters{Opens: 1, Writes: 10, BytesWritten: 1 << 20}}}}
	blob, err := darshan.MarshalBinary(j)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(blob)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		binary.LittleEndian.PutUint64(blob[8:], uint64(i))
		if _, dup, err := st.PutTraceBytes(blob); err != nil || dup {
			b.Fatalf("dup=%v err=%v", dup, err)
		}
	}
}

// Targets returns every pinned benchmark.
func Targets() []Target {
	var ts []Target
	for _, size := range MeanShiftSizes() {
		for _, mode := range MeanShiftModes(size.N) {
			ts = append(ts, Target{
				Name: fmt.Sprintf("BenchmarkMeanShift/n=%s/%s", size.Label, mode.Label),
				File: MeanShiftFile,
				Fn:   meanShiftBench(size.N, mode.Cfg),
			})
		}
	}
	ts = append(ts,
		Target{Name: "BenchmarkCategorizeSingle", File: PipelineFile, Fn: CategorizeSingle},
		Target{Name: "BenchmarkPipelineParallel/4workers", File: PipelineFile, Fn: PipelineParallel(4)},
		Target{Name: "BenchmarkIngest/decode_warm", File: IngestFile, Fn: IngestDecodeWarm},
		Target{Name: "BenchmarkIngest/decode_gzip", File: IngestFile, Fn: IngestDecodeGzip},
		Target{Name: "BenchmarkIngest/encode", File: IngestFile, Fn: IngestEncode},
		Target{Name: "BenchmarkIngest/store_append", File: IngestFile, Fn: IngestStoreAppend},
		Target{Name: "BenchmarkServe/ingest_warm_untraced", File: ServeFile, Fn: ServeIngestWarm(false)},
		Target{Name: "BenchmarkServe/ingest_warm_traced", File: ServeFile, Fn: ServeIngestWarm(true)},
		Target{Name: "BenchmarkServe/ingest_warm_unobserved", File: ServeFile, Fn: ServeIngestObserved(false)},
		Target{Name: "BenchmarkServe/ingest_warm_observed", File: ServeFile, Fn: ServeIngestObserved(true)},
		Target{Name: "BenchmarkCluster/ingest_n1", File: ClusterFile, Fn: ClusterIngest(1, 1)},
		Target{Name: "BenchmarkCluster/ingest_n4_rf1", File: ClusterFile, Fn: ClusterIngest(4, 1)},
		Target{Name: "BenchmarkCluster/ingest_n4_rf2", File: ClusterFile, Fn: ClusterIngest(4, 2)},
		Target{Name: "BenchmarkCluster/scatter_query_n4", File: ClusterFile, Fn: ClusterScatterQuery(4)},
		Target{Name: "BenchmarkQuery/point_1m", File: QueryFile, Fn: QueryBench("point", false)},
		Target{Name: "BenchmarkQuery/and_heavy_1m", File: QueryFile, Fn: QueryBench("and_heavy", false)},
		Target{Name: "BenchmarkQuery/not_heavy_1m", File: QueryFile, Fn: QueryBench("not_heavy", false)},
		Target{Name: "BenchmarkQuery/stats_1m", File: QueryFile, Fn: QueryBench("stats", false)},
		Target{Name: "BenchmarkQuery/rebuild_20k", File: QueryFile, Fn: QueryRebuild(false)},
		Target{Name: "BenchmarkQueryOracle/point_1m", File: QueryFile, Fn: QueryBench("point", true)},
		Target{Name: "BenchmarkQueryOracle/and_heavy_1m", File: QueryFile, Fn: QueryBench("and_heavy", true)},
		Target{Name: "BenchmarkQueryOracle/not_heavy_1m", File: QueryFile, Fn: QueryBench("not_heavy", true)},
		Target{Name: "BenchmarkQueryOracle/stats_1m", File: QueryFile, Fn: QueryBench("stats", true)},
		Target{Name: "BenchmarkQueryOracle/rebuild_20k", File: QueryFile, Fn: QueryRebuild(true)},
		Target{Name: "BenchmarkMergeSorted/k2", File: QueryFile, Fn: QueryMergeSorted(2)},
		Target{Name: "BenchmarkMergeSorted/k8", File: QueryFile, Fn: QueryMergeSorted(8)},
		Target{Name: "BenchmarkMergeSorted/k32", File: QueryFile, Fn: QueryMergeSorted(32)},
	)
	return ts
}

// Run executes every pinned target count times through testing.Benchmark,
// keeping the fastest ns/op per target, and returns the results grouped
// by baseline file name. report, when non-nil, receives one line per
// measurement.
func Run(count int, report func(string)) map[string]benchio.File {
	if count < 1 {
		count = 1
	}
	files := make(map[string]benchio.File)
	for _, t := range Targets() {
		var best benchio.Entry
		for c := 0; c < count; c++ {
			r := testing.Benchmark(t.Fn)
			ns := float64(r.T.Nanoseconds()) / float64(r.N)
			if c == 0 || ns < best.NsPerOp {
				best = benchio.Entry{
					Name:        t.Name,
					NsPerOp:     ns,
					BytesPerOp:  r.AllocedBytesPerOp(),
					AllocsPerOp: r.AllocsPerOp(),
					Iterations:  r.N,
				}
			}
		}
		if report != nil {
			report(fmt.Sprintf("%-44s %14.0f ns/op %8d B/op %6d allocs/op",
				t.Name, best.NsPerOp, best.BytesPerOp, best.AllocsPerOp))
		}
		f := files[t.File]
		f.Go = runtime.Version()
		f.OS = runtime.GOOS
		f.Arch = runtime.GOARCH
		f.Entries = append(f.Entries, best)
		files[t.File] = f
	}
	return files
}
