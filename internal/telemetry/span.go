package telemetry

import (
	"container/heap"
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// Span is one completed timed unit of work: a whole pipeline stage or
// one trace passing through one stage.
type Span struct {
	Name  string        // trace file name, app identity, or stage name
	Cat   string        // category lane: the stage id
	Start time.Time     // wall-clock start
	Dur   time.Duration // elapsed
}

// SpanRecorder accumulates spans concurrently and exports them in the
// Chrome trace-event JSON format, loadable in chrome://tracing and
// Perfetto. The zero value is not usable; call NewSpanRecorder.
type SpanRecorder struct {
	mu    sync.Mutex
	spans []Span
	epoch time.Time // ts origin for the export; first Record pins it
	limit int       // max retained spans (0: unlimited)
	drops int64     // spans dropped past the limit
}

// NewSpanRecorder returns a recorder retaining at most limit spans
// (<= 0: unlimited). A corpus of a million traces at three spans each
// is ~100 MB of span state, so long daemon runs should set a limit.
func NewSpanRecorder(limit int) *SpanRecorder {
	return &SpanRecorder{limit: limit}
}

// Record appends one completed span.
func (r *SpanRecorder) Record(s Span) {
	r.mu.Lock()
	if r.epoch.IsZero() || s.Start.Before(r.epoch) {
		r.epoch = s.Start
	}
	if r.limit > 0 && len(r.spans) >= r.limit {
		r.drops++
	} else {
		r.spans = append(r.spans, s)
	}
	r.mu.Unlock()
}

// Len returns the number of retained spans.
func (r *SpanRecorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}

// Dropped returns how many spans were discarded past the retention
// limit.
func (r *SpanRecorder) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.drops
}

// TraceEvent is one Chrome trace-event object ("X" complete events and
// "M" metadata events are the two phases this exporter emits).
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`            // microseconds since export epoch
	Dur  float64        `json:"dur,omitempty"` // microseconds
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// ChromeTrace is the top-level trace-event JSON document.
type ChromeTrace struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// chromeLanes maps span categories to stable tid lanes so every stage
// renders as its own named track in Perfetto; unknown categories get
// lanes after the known ones in first-seen order.
func chromeLanes(spans []Span) map[string]int {
	known := []string{"run", "scan", "decode", "funnel", "categorize", "aggregate"}
	lanes := make(map[string]int, len(known))
	for i, k := range known {
		lanes[k] = i
	}
	next := len(known)
	for _, s := range spans {
		if _, ok := lanes[s.Cat]; !ok {
			lanes[s.Cat] = next
			next++
		}
	}
	return lanes
}

// Export builds the Chrome trace document from the retained spans.
func (r *SpanRecorder) Export() ChromeTrace {
	r.mu.Lock()
	spans := append([]Span(nil), r.spans...)
	epoch := r.epoch
	r.mu.Unlock()

	lanes := chromeLanes(spans)
	events := make([]TraceEvent, 0, len(spans)+len(lanes))

	// Thread-name metadata so Perfetto labels each lane with its stage.
	names := make([]string, 0, len(lanes))
	for cat := range lanes {
		names = append(names, cat)
	}
	sort.Slice(names, func(i, j int) bool { return lanes[names[i]] < lanes[names[j]] })
	for _, cat := range names {
		events = append(events, TraceEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: lanes[cat],
			Args: map[string]any{"name": cat},
		})
	}
	for _, s := range spans {
		events = append(events, TraceEvent{
			Name: s.Name,
			Cat:  s.Cat,
			Ph:   "X",
			Ts:   float64(s.Start.Sub(epoch).Nanoseconds()) / 1e3,
			Dur:  float64(s.Dur.Nanoseconds()) / 1e3,
			Pid:  1,
			Tid:  lanes[s.Cat],
		})
	}
	return ChromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"}
}

// WriteChromeTrace writes the trace-event JSON document to w.
func (r *SpanRecorder) WriteChromeTrace(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(r.Export())
}

// SlowEntry is one retained slow item: a trace (or app) and how long
// one stage spent on it.
type SlowEntry struct {
	Stage string        `json:"stage"`
	Name  string        `json:"name"`
	Dur   time.Duration `json:"dur_ns"`
}

// slowHeap is a min-heap on duration, so the root is the fastest of the
// retained K and eviction is O(log K).
type slowHeap []SlowEntry

func (h slowHeap) Len() int           { return len(h) }
func (h slowHeap) Less(i, j int) bool { return h[i].Dur < h[j].Dur }
func (h slowHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *slowHeap) Push(x any)        { *h = append(*h, x.(SlowEntry)) }
func (h *slowHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// SlowLog retains the K slowest items per stage, concurrent-safe.
type SlowLog struct {
	mu sync.Mutex
	k  int
	by map[string]*slowHeap
}

// NewSlowLog returns a log keeping the k slowest entries per stage
// (<= 0: 10).
func NewSlowLog(k int) *SlowLog {
	if k <= 0 {
		k = 10
	}
	return &SlowLog{k: k, by: make(map[string]*slowHeap)}
}

// Observe records one item's duration in a stage.
func (l *SlowLog) Observe(stage, name string, d time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	h, ok := l.by[stage]
	if !ok {
		h = &slowHeap{}
		l.by[stage] = h
	}
	if h.Len() < l.k {
		heap.Push(h, SlowEntry{Stage: stage, Name: name, Dur: d})
		return
	}
	if d > (*h)[0].Dur {
		(*h)[0] = SlowEntry{Stage: stage, Name: name, Dur: d}
		heap.Fix(h, 0)
	}
}

// Slowest returns the retained entries for one stage, slowest first.
func (l *SlowLog) Slowest(stage string) []SlowEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	h, ok := l.by[stage]
	if !ok {
		return nil
	}
	out := append([]SlowEntry(nil), (*h)...)
	sort.Slice(out, func(i, j int) bool { return out[i].Dur > out[j].Dur })
	return out
}

// Snapshot returns every stage's slow entries, slowest first within a
// stage, keyed by stage name.
func (l *SlowLog) Snapshot() map[string][]SlowEntry {
	l.mu.Lock()
	stages := make([]string, 0, len(l.by))
	for s := range l.by {
		stages = append(stages, s)
	}
	l.mu.Unlock()
	out := make(map[string][]SlowEntry, len(stages))
	for _, s := range stages {
		out[s] = l.Slowest(s)
	}
	return out
}
