module github.com/mosaic-hpc/mosaic

go 1.22
