package telemetry

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"github.com/mosaic-hpc/mosaic/internal/darshan"
	"github.com/mosaic-hpc/mosaic/internal/engine"
	"github.com/mosaic-hpc/mosaic/internal/gen"
)

// corpusJobs builds a deterministic valid corpus of n traces across a
// few (user, app) groups.
func corpusJobs(n int) []*darshan.Job {
	rng := rand.New(rand.NewSource(11))
	jobs := make([]*darshan.Job, 0, n)
	for i := 0; i < n; i++ {
		b := gen.NewBuilder(rng, fmt.Sprintf("u%d", i%3), fmt.Sprintf("/bin/app%d", i%4), uint64(i+1), 8, 3600)
		b.Burst(gen.BurstSpec{At: 30, Duration: 60, Bytes: 1 << 30, Records: 4})
		jobs = append(jobs, b.Job())
	}
	return jobs
}

func TestTelemetryInstrumentsEngineRun(t *testing.T) {
	tel := New(Config{Spans: true, SlowK: 5})
	jobs := corpusJobs(24)
	res, err := engine.Run(context.Background(), engine.Jobs(jobs), engine.Options{
		Workers:  4,
		Observer: tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	tel.FinishRun()

	// Metrics: decode saw every trace, categorize every unique app.
	var b strings.Builder
	if err := tel.Registry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	prom := b.String()
	if want := fmt.Sprintf(`mosaic_engine_items_out_total{stage="decode"} %d`, len(jobs)); !strings.Contains(prom, want) {
		t.Fatalf("missing %q in exposition:\n%s", want, prom)
	}
	if want := fmt.Sprintf(`mosaic_engine_items_out_total{stage="categorize"} %d`, len(res.Apps)); !strings.Contains(prom, want) {
		t.Fatalf("missing %q in exposition:\n%s", want, prom)
	}
	if !strings.Contains(prom, `mosaic_engine_item_seconds_count{stage="decode"}`) {
		t.Fatalf("missing decode latency histogram:\n%s", prom)
	}
	// In-flight gauges settle to zero after a drained run.
	for _, stage := range []string{"decode", "categorize", "aggregate"} {
		if want := fmt.Sprintf(`mosaic_engine_in_flight{stage=%q} 0`, stage); !strings.Contains(prom, want) {
			t.Fatalf("missing %q (gauge did not settle):\n%s", want, prom)
		}
	}

	// Spans: one decode span per trace, one categorize span per app,
	// plus whole-stage envelope spans from FinishRun.
	spans := tel.Spans().Export()
	var decode, categorize, envelope int
	for _, e := range spans.TraceEvents {
		switch {
		case e.Ph != "X":
		case e.Cat == "decode":
			decode++
		case e.Cat == "categorize":
			categorize++
		case e.Cat == "run":
			envelope++
		}
	}
	if decode != len(jobs) {
		t.Fatalf("decode spans = %d, want %d", decode, len(jobs))
	}
	if categorize != len(res.Apps) {
		t.Fatalf("categorize spans = %d, want %d", categorize, len(res.Apps))
	}
	if envelope == 0 {
		t.Fatal("no whole-stage envelope spans after FinishRun")
	}

	// Slow log retained categorize entries named user/app.
	slow := tel.Slow().Slowest("categorize")
	if len(slow) == 0 {
		t.Fatal("slow log is empty for categorize")
	}
	if !strings.Contains(slow[0].Name, "/") {
		t.Fatalf("slow entry name %q does not look like user/app", slow[0].Name)
	}

	// Stats: the same run is visible through the embedded collector.
	if got := tel.Stats().Stage(engine.StageFunnel).In; got != int64(len(jobs)) {
		t.Fatalf("funnel in = %d, want %d", got, len(jobs))
	}
}

func TestTelemetryWithoutSpansRecordsNoSpans(t *testing.T) {
	tel := New(Config{})
	if tel.Spans() != nil {
		t.Fatal("span recorder allocated without Config.Spans")
	}
	// ItemSpan with spans disabled must still feed histogram + slow log.
	tel.ItemSpan(engine.StageDecode, "x.mosd", time.Now(), time.Millisecond)
	if len(tel.Slow().Slowest("decode")) != 1 {
		t.Fatal("slow log missed a span with recording disabled")
	}
	tel.FinishRun() // must not panic with spans disabled
}
