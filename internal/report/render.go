package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/mosaic-hpc/mosaic/internal/category"
	"github.com/mosaic-hpc/mosaic/internal/core"
	"github.com/mosaic-hpc/mosaic/internal/stats"
)

// Text rendering of the aggregate statistics: plain ASCII tables shaped
// like the paper's tables and figures, suitable for terminals and logs.

func pct(v float64) string { return fmt.Sprintf("%5.1f%%", v*100) }

// WriteFunnel renders the pre-processing funnel (Figure 3).
func WriteFunnel(w io.Writer, s core.FunnelStats) {
	fmt.Fprintf(w, "Pre-processing funnel (Figure 3)\n")
	fmt.Fprintf(w, "  traces scanned     %8d\n", s.Total)
	fmt.Fprintf(w, "  corrupted, evicted %8d  (%s of total)\n", s.Corrupted, pct(s.CorruptedFraction()))
	fmt.Fprintf(w, "  valid              %8d\n", s.Valid)
	fmt.Fprintf(w, "  unique apps kept   %8d  (%s of valid)\n", s.UniqueApps, pct(s.UniqueFraction()))
	if len(s.ByReason) > 0 {
		reasons := make([]string, 0, len(s.ByReason))
		for r := range s.ByReason {
			reasons = append(reasons, r)
		}
		sort.Strings(reasons)
		fmt.Fprintf(w, "  eviction reasons:\n")
		for _, r := range reasons {
			fmt.Fprintf(w, "    %-22s %8d\n", r, s.ByReason[r])
		}
	}
}

// WriteTemporality renders Table III for both directions.
func WriteTemporality(w io.Writer, a *Aggregator) {
	for _, dir := range []category.Direction{category.DirRead, category.DirWrite} {
		single, all := a.Temporality(dir)
		peak := "On start"
		peakOf := func(r TemporalityRow) float64 { return r.OnStart }
		if dir == category.DirWrite {
			peak = "On end"
			peakOf = func(r TemporalityRow) float64 { return r.OnEnd }
		}
		fmt.Fprintf(w, "%s temporality (Table III)\n", strings.Title(dir.String()))
		fmt.Fprintf(w, "  %-12s %-13s %-9s %-8s %-8s\n", "Distrib.", "Insignificant", peak, "Steady", "Others")
		for _, row := range []TemporalityRow{single, all} {
			label := "Single run"
			if row.View == "all" {
				label = "All runs"
			}
			fmt.Fprintf(w, "  %-12s %-13s %-9s %-8s %-8s\n",
				label, pct(row.Insignificant), pct(peakOf(row)), pct(row.Steady), pct(row.Others))
		}
	}
}

// WritePeriodicity renders Table II for the given direction.
func WritePeriodicity(w io.Writer, a *Aggregator, dir category.Direction) {
	single, all := a.Periodicity(dir)
	fmt.Fprintf(w, "Periodic %s operations (Table II)\n", dir)
	fmt.Fprintf(w, "  %-12s %-13s %-9s   magnitudes\n", "Execution", "Non-Periodic", "Periodic")
	for _, row := range []PeriodicityRow{single, all} {
		label := "Single run"
		if row.View == "all" {
			label = "All runs"
		}
		mags := make([]string, 0, 4)
		for _, m := range []category.PeriodMagnitude{category.MagSecond, category.MagMinute, category.MagHour, category.MagDayOrMore} {
			if v := row.Magnitudes[m]; v > 0 {
				mags = append(mags, fmt.Sprintf("%s=%s", m, pct(v)))
			}
		}
		fmt.Fprintf(w, "  %-12s %-13s %-9s   %s\n", label, pct(row.NonPeriodic), pct(row.Periodic), strings.Join(mags, " "))
	}
	if periods := a.Periods(dir); len(periods) > 0 {
		fmt.Fprintf(w, "  detected periods: min=%.0fs median=%.0fs max=%.0fs\n",
			stats.Min(periods), stats.Median(periods), stats.Max(periods))
	}
}

// WriteMetadata renders the metadata category distribution (Figure 4) as
// horizontal bars.
func WriteMetadata(w io.Writer, a *Aggregator) {
	single, all := a.MetadataDist()
	fmt.Fprintf(w, "Metadata category distribution (Figure 4)\n")
	order := []category.Category{
		category.MetaHighSpike, category.MetaMultipleSpikes,
		category.MetaHighDensity, category.MetaInsignificantLoad,
	}
	for _, c := range order {
		fmt.Fprintf(w, "  %-28s single %s %s\n", c, pct(single[c]), bar(single[c], 30))
		fmt.Fprintf(w, "  %-28s all    %s %s\n", "", pct(all[c]), bar(all[c], 30))
	}
}

func bar(v float64, width int) string {
	n := int(v * float64(width))
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	return strings.Repeat("#", n) + strings.Repeat(".", width-n)
}

// WriteJaccard renders the Jaccard heatmap (Figure 5) restricted to
// categories with at least one member and pairs above the threshold.
func WriteJaccard(w io.Writer, a *Aggregator, threshold float64) {
	co := a.Co()
	// Keep only populated labels so the matrix stays readable.
	var labels []category.Category
	for _, l := range co.Labels {
		if co.Count(l) > 0 {
			labels = append(labels, l)
		}
	}
	fmt.Fprintf(w, "Jaccard index matrix (Figure 5, values >= %s)\n", pct(threshold))
	pairs := co.TopPairs(threshold)
	if len(pairs) == 0 {
		fmt.Fprintf(w, "  (no pairs above threshold)\n")
		return
	}
	for _, p := range pairs {
		fmt.Fprintf(w, "  %-34s x %-34s %s\n", p.A, p.B, pct(p.Jaccard))
	}
	_ = labels
}

// WriteHeatmap renders the full matrix as a compact grid with single-digit
// deciles ("." = <5%, 1-9 = deciles, "X" >= 95%) over the populated
// categories.
func WriteHeatmap(w io.Writer, a *Aggregator, minRate float64) {
	co := a.Co()
	var labels []category.Category
	for _, l := range co.Labels {
		if co.Rate(l) >= minRate {
			labels = append(labels, l)
		}
	}
	fmt.Fprintf(w, "Jaccard heatmap grid (%d categories with rate >= %s)\n", len(labels), pct(minRate))
	for i, li := range labels {
		fmt.Fprintf(w, "  %2d %-34s ", i, li)
		for _, lj := range labels {
			fmt.Fprint(w, cell(co.Jaccard(li, lj)))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "     %-34s ", "(columns in row order)")
	for i := range labels {
		fmt.Fprint(w, i%10)
	}
	fmt.Fprintln(w)
}

func cell(v float64) string {
	switch {
	case v >= 0.95:
		return "X"
	case v < 0.05:
		return "."
	default:
		return fmt.Sprintf("%d", int(v*10))
	}
}

// WriteCorrelations prints the Section IV-D correlation statements.
func WriteCorrelations(w io.Writer, c Correlations) {
	fmt.Fprintf(w, "Noteworthy correlations (Section IV-D)\n")
	fmt.Fprintf(w, "  P(write insignificant | read insignificant) = %s  (paper: 95%%)\n", pct(c.InsigReadAlsoInsigWrite))
	fmt.Fprintf(w, "  P(write on end | read on start)              = %s  (paper: 66%%)\n", pct(c.ReadStartWritesEnd))
	fmt.Fprintf(w, "  P(low busy time | periodic write)            = %s  (paper: 96%%)\n", pct(c.PeriodicWriteLowBusy))
	fmt.Fprintf(w, "  P(read start / write end | metadata dense)   = %s\n", pct(c.MetaDenseReadStartOrWriteEnd))
}

// WriteResult renders one trace's categorization in a human-readable
// "explain" form (the Figure 2 walkthrough).
func WriteResult(w io.Writer, res *core.Result) {
	fmt.Fprintf(w, "job %d  app=%s user=%s nprocs=%d runtime=%.0fs\n", res.JobID, res.App, res.User, res.NProcs, res.Runtime)
	fmt.Fprintf(w, "  categories: %s\n", strings.Join(res.Labels, ", "))
	writeDir := func(name string, d core.DirectionReport) {
		fmt.Fprintf(w, "  %s: %d ops -> %d merged, %d bytes, busy %.1fs, temporality=%s\n",
			name, d.RawOps, d.MergedOps, d.TotalBytes, d.BusyTime, d.TemporalS)
		if len(d.Chunks) > 0 {
			fmt.Fprintf(w, "    chunk volumes:")
			for _, c := range d.Chunks {
				fmt.Fprintf(w, " %.0f", c)
			}
			fmt.Fprintln(w)
		}
		for _, g := range d.Groups {
			fmt.Fprintf(w, "    periodic group: %d occurrences, period %.1fs (%s), %.0f bytes/op, busy ratio %.2f\n",
				g.Count, g.Period, g.Magnitude, g.MeanBytes, g.BusyRatio)
		}
	}
	writeDir("read", res.Read)
	writeDir("write", res.Write)
	fmt.Fprintf(w, "  metadata: %d ops, peak %.0f req/s, mean %.1f req/s, %d spikes (%d high)\n",
		res.Meta.TotalOps, res.Meta.PeakRate, res.Meta.MeanRate, res.Meta.SpikeCount, res.Meta.HighSpikes)
}
