package darshan

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"path"
	"strings"
)

// Anonymization: publicly released Darshan corpora (including the Blue
// Waters dataset) hash user identities and file paths before
// distribution. This mirrors that pipeline so synthetic or local corpora
// can be shared: identities are replaced by keyed hashes, stable within a
// salt so that deduplication by (user, application) and per-file analysis
// keep working on the anonymized corpus.

// Anonymizer rewrites identifying fields with salted hashes.
type Anonymizer struct {
	salt []byte
}

// NewAnonymizer creates an anonymizer; the same salt yields the same
// pseudonyms, enabling cross-trace joins on anonymized corpora.
func NewAnonymizer(salt string) *Anonymizer {
	return &Anonymizer{salt: []byte(salt)}
}

// token derives a stable 48-bit pseudonym for a value under the salt.
func (a *Anonymizer) token(kind, value string) string {
	h := sha256.New()
	h.Write(a.salt)
	h.Write([]byte{0})
	h.Write([]byte(kind))
	h.Write([]byte{0})
	h.Write([]byte(value))
	sum := h.Sum(nil)
	return fmt.Sprintf("%012x", binary.BigEndian.Uint64(sum[:8])&0xFFFFFFFFFFFF)
}

// User returns the pseudonym for a user name.
func (a *Anonymizer) User(user string) string { return "u" + a.token("user", user) }

// Exe returns the pseudonym for an executable path, preserving the
// directory depth so AppName-style grouping still functions.
func (a *Anonymizer) Exe(exe string) string {
	base := exe
	if i := strings.IndexByte(base, ' '); i >= 0 {
		base = base[:i] // strip arguments: they may embed input names
	}
	return "/anon/app-" + a.token("exe", base)
}

// Path returns the pseudonym for a file path, keeping the mount-point
// prefix (first component) in the clear like darshan-util's --obfuscate:
// file-system-level analysis stays possible.
func (a *Anonymizer) Path(p string) string {
	mount := "/"
	trimmed := strings.TrimPrefix(p, "/")
	if i := strings.IndexByte(trimmed, '/'); i >= 0 {
		mount = "/" + trimmed[:i]
	} else if trimmed != "" {
		mount = "/" + trimmed
	}
	return path.Join(mount, "f-"+a.token("path", p))
}

// Job anonymizes a trace in place: user, uid, executable, record paths
// and free-form metadata (dropped entirely — it may contain anything).
// Counters and timestamps are untouched, so categorization results are
// identical before and after.
func (a *Anonymizer) Job(j *Job) {
	j.User = a.User(j.User)
	j.UID = uint32(binary.BigEndian.Uint32([]byte(a.token("uid", fmt.Sprint(j.UID)))[:4]))
	j.Exe = a.Exe(j.Exe)
	j.Metadata = nil
	for i := range j.Records {
		j.Records[i].Path = a.Path(j.Records[i].Path)
	}
}

// Corpus anonymizes every job under the same salt.
func (a *Anonymizer) Corpus(jobs []*Job) {
	for _, j := range jobs {
		a.Job(j)
	}
}
