package darshan

import (
	"bufio"
	"fmt"
	"io"
	"path"
	"strconv"
	"strings"
)

// Text codec: reads the output of the real `darshan-parser` utility, the
// lingua franca for Darshan log interchange (the binary libdarshan format
// itself is not reimplemented — any real log can be converted with
// `darshan-parser trace.darshan > trace.txt`). Only the counters MOSAIC
// consumes are interpreted; everything else is skipped.
//
// The format, abridged:
//
//	# darshan log version: 3.41
//	# exe: /apps/bin/lammps -in run.in
//	# uid: 1001
//	# jobid: 4478541
//	# start_time: 1546300800
//	# end_time: 1546304400
//	# nprocs: 512
//	# run time: 3600.1
//	...
//	#<module>  <rank>  <record id>  <counter>  <value>  <file name>  <mount pt>  <fs type>
//	POSIX   -1  9223372036854  POSIX_OPENS  512  /scratch/in.dat  /scratch  lustre
//	POSIX   -1  9223372036854  POSIX_F_OPEN_START_TIMESTAMP  1.02  /scratch/in.dat  /scratch  lustre
//
// Counter rows aggregate per (module, rank, record id).

// counterSetter maps darshan-parser counter names onto the Counters model.
// Integer and float counters share the table; values arrive as float64 and
// are truncated for integer counters.
var counterSetter = map[string]func(*Counters, float64){
	"POSIX_OPENS":  func(c *Counters, v float64) { c.Opens += int64(v) },
	"POSIX_SEEKS":  func(c *Counters, v float64) { c.Seeks += int64(v) },
	"POSIX_STATS":  func(c *Counters, v float64) { c.Stats += int64(v) },
	"POSIX_READS":  func(c *Counters, v float64) { c.Reads += int64(v) },
	"POSIX_WRITES": func(c *Counters, v float64) { c.Writes += int64(v) },
	// darshan-parser has no explicit close counter; POSIX_FILENOS and
	// friends are ignored and closes are assumed to mirror opens when the
	// close timestamps are present.
	"POSIX_BYTES_READ":    func(c *Counters, v float64) { c.BytesRead += int64(v) },
	"POSIX_BYTES_WRITTEN": func(c *Counters, v float64) { c.BytesWritten += int64(v) },

	"POSIX_F_OPEN_START_TIMESTAMP":  func(c *Counters, v float64) { c.OpenStart = v },
	"POSIX_F_OPEN_END_TIMESTAMP":    func(c *Counters, v float64) { c.OpenEnd = v },
	"POSIX_F_READ_START_TIMESTAMP":  func(c *Counters, v float64) { c.ReadStart = v },
	"POSIX_F_READ_END_TIMESTAMP":    func(c *Counters, v float64) { c.ReadEnd = v },
	"POSIX_F_WRITE_START_TIMESTAMP": func(c *Counters, v float64) { c.WriteStart = v },
	"POSIX_F_WRITE_END_TIMESTAMP":   func(c *Counters, v float64) { c.WriteEnd = v },
	"POSIX_F_CLOSE_START_TIMESTAMP": func(c *Counters, v float64) { c.CloseStart = v },
	"POSIX_F_CLOSE_END_TIMESTAMP":   func(c *Counters, v float64) { c.CloseEnd = v },

	// MPI-IO and STDIO module counters map onto the same model.
	"MPIIO_INDEP_OPENS":             func(c *Counters, v float64) { c.Opens += int64(v) },
	"MPIIO_COLL_OPENS":              func(c *Counters, v float64) { c.Opens += int64(v) },
	"MPIIO_INDEP_READS":             func(c *Counters, v float64) { c.Reads += int64(v) },
	"MPIIO_COLL_READS":              func(c *Counters, v float64) { c.Reads += int64(v) },
	"MPIIO_INDEP_WRITES":            func(c *Counters, v float64) { c.Writes += int64(v) },
	"MPIIO_COLL_WRITES":             func(c *Counters, v float64) { c.Writes += int64(v) },
	"MPIIO_BYTES_READ":              func(c *Counters, v float64) { c.BytesRead += int64(v) },
	"MPIIO_BYTES_WRITTEN":           func(c *Counters, v float64) { c.BytesWritten += int64(v) },
	"MPIIO_F_OPEN_START_TIMESTAMP":  func(c *Counters, v float64) { c.OpenStart = v },
	"MPIIO_F_OPEN_END_TIMESTAMP":    func(c *Counters, v float64) { c.OpenEnd = v },
	"MPIIO_F_READ_START_TIMESTAMP":  func(c *Counters, v float64) { c.ReadStart = v },
	"MPIIO_F_READ_END_TIMESTAMP":    func(c *Counters, v float64) { c.ReadEnd = v },
	"MPIIO_F_WRITE_START_TIMESTAMP": func(c *Counters, v float64) { c.WriteStart = v },
	"MPIIO_F_WRITE_END_TIMESTAMP":   func(c *Counters, v float64) { c.WriteEnd = v },
	"MPIIO_F_CLOSE_START_TIMESTAMP": func(c *Counters, v float64) { c.CloseStart = v },
	"MPIIO_F_CLOSE_END_TIMESTAMP":   func(c *Counters, v float64) { c.CloseEnd = v },

	"STDIO_OPENS":                   func(c *Counters, v float64) { c.Opens += int64(v) },
	"STDIO_SEEKS":                   func(c *Counters, v float64) { c.Seeks += int64(v) },
	"STDIO_READS":                   func(c *Counters, v float64) { c.Reads += int64(v) },
	"STDIO_WRITES":                  func(c *Counters, v float64) { c.Writes += int64(v) },
	"STDIO_BYTES_READ":              func(c *Counters, v float64) { c.BytesRead += int64(v) },
	"STDIO_BYTES_WRITTEN":           func(c *Counters, v float64) { c.BytesWritten += int64(v) },
	"STDIO_F_OPEN_START_TIMESTAMP":  func(c *Counters, v float64) { c.OpenStart = v },
	"STDIO_F_OPEN_END_TIMESTAMP":    func(c *Counters, v float64) { c.OpenEnd = v },
	"STDIO_F_READ_START_TIMESTAMP":  func(c *Counters, v float64) { c.ReadStart = v },
	"STDIO_F_READ_END_TIMESTAMP":    func(c *Counters, v float64) { c.ReadEnd = v },
	"STDIO_F_WRITE_START_TIMESTAMP": func(c *Counters, v float64) { c.WriteStart = v },
	"STDIO_F_WRITE_END_TIMESTAMP":   func(c *Counters, v float64) { c.WriteEnd = v },
	"STDIO_F_CLOSE_START_TIMESTAMP": func(c *Counters, v float64) { c.CloseStart = v },
	"STDIO_F_CLOSE_END_TIMESTAMP":   func(c *Counters, v float64) { c.CloseEnd = v },
}

func moduleFromParserName(s string) (Module, bool) {
	switch s {
	case "POSIX":
		return ModPOSIX, true
	case "MPI-IO", "MPIIO":
		return ModMPIIO, true
	case "STDIO":
		return ModSTDIO, true
	default:
		return 0, false
	}
}

// ReadParserText parses darshan-parser output into a Job. Unknown modules
// and counters are skipped silently (darshan-parser emits dozens of
// counters per record; MOSAIC needs a dozen). Header fields may appear in
// any order; a missing run time falls back to end_time - start_time.
func ReadParserText(r io.Reader) (*Job, error) {
	j := &Job{}
	type recKey struct {
		mod  Module
		rank int32
		id   string
	}
	records := make(map[recKey]*FileRecord)
	var order []recKey

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseHeaderLine(j, line); err != nil {
				return nil, fmt.Errorf("darshan: text line %d: %w", lineNo, err)
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 5 {
			return nil, fmt.Errorf("darshan: text line %d: short counter row %q", lineNo, line)
		}
		mod, ok := moduleFromParserName(fields[0])
		if !ok {
			continue // module MOSAIC does not consume (LUSTRE, DXT, ...)
		}
		setter, ok := counterSetter[fields[3]]
		if !ok {
			continue
		}
		rank64, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("darshan: text line %d: rank %q: %v", lineNo, fields[1], err)
		}
		value, err := strconv.ParseFloat(fields[4], 64)
		if err != nil {
			return nil, fmt.Errorf("darshan: text line %d: value %q: %v", lineNo, fields[4], err)
		}
		key := recKey{mod: mod, rank: int32(rank64), id: fields[2]}
		rec, ok := records[key]
		if !ok {
			filePath := ""
			if len(fields) >= 6 {
				filePath = fields[5]
			}
			rec = &FileRecord{Module: mod, Rank: int32(rank64), Path: filePath}
			records[key] = rec
			order = append(order, key)
		}
		setter(&rec.C, value)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("darshan: reading text log: %w", err)
	}

	if j.Runtime == 0 && j.End > j.Start {
		j.Runtime = float64(j.End - j.Start)
	}
	for _, key := range order {
		rec := records[key]
		// darshan-parser does not expose closes; when the record was
		// opened and carries close timestamps, mirror the open count.
		if rec.C.Opens > 0 && rec.C.Closes == 0 && rec.C.CloseEnd > 0 {
			rec.C.Closes = rec.C.Opens
		}
		j.Records = append(j.Records, *rec)
	}
	return j, nil
}

func parseHeaderLine(j *Job, line string) error {
	body := strings.TrimSpace(strings.TrimPrefix(line, "#"))
	colon := strings.IndexByte(body, ':')
	if colon < 0 {
		return nil // separator or column-description comment
	}
	key := strings.TrimSpace(body[:colon])
	val := strings.TrimSpace(body[colon+1:])
	switch key {
	case "exe":
		j.Exe = val
	case "uid":
		v, err := strconv.ParseUint(val, 10, 32)
		if err != nil {
			return fmt.Errorf("uid %q: %v", val, err)
		}
		j.UID = uint32(v)
		if j.User == "" {
			j.User = "uid" + val
		}
	case "jobid":
		v, err := strconv.ParseUint(val, 10, 64)
		if err != nil {
			return fmt.Errorf("jobid %q: %v", val, err)
		}
		j.JobID = v
	case "start_time":
		v, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return fmt.Errorf("start_time %q: %v", val, err)
		}
		j.Start = v
	case "end_time":
		v, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return fmt.Errorf("end_time %q: %v", val, err)
		}
		j.End = v
	case "nprocs":
		v, err := strconv.ParseInt(val, 10, 32)
		if err != nil {
			return fmt.Errorf("nprocs %q: %v", val, err)
		}
		j.NProcs = int32(v)
	case "run time":
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return fmt.Errorf("run time %q: %v", val, err)
		}
		j.Runtime = v
	}
	return nil
}

// WriteParserText emits the job in darshan-parser-compatible text, the
// inverse of ReadParserText for the counters MOSAIC models. Useful for
// feeding synthetic corpora to external Darshan analysis tools.
func WriteParserText(w io.Writer, j *Job) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# darshan log version: 3.41\n")
	fmt.Fprintf(bw, "# exe: %s\n", j.Exe)
	fmt.Fprintf(bw, "# uid: %d\n", j.UID)
	fmt.Fprintf(bw, "# jobid: %d\n", j.JobID)
	fmt.Fprintf(bw, "# start_time: %d\n", j.Start)
	fmt.Fprintf(bw, "# end_time: %d\n", j.End)
	fmt.Fprintf(bw, "# nprocs: %d\n", j.NProcs)
	fmt.Fprintf(bw, "# run time: %g\n", j.Runtime)
	fmt.Fprintf(bw, "#<module>\t<rank>\t<record id>\t<counter>\t<value>\t<file name>\t<mount pt>\t<fs type>\n")

	for i := range j.Records {
		rec := &j.Records[i]
		mod := parserModuleName(rec.Module)
		prefix := parserCounterPrefix(rec.Module)
		id := recordID(rec.Path, i)
		row := func(counter string, value string) {
			fmt.Fprintf(bw, "%s\t%d\t%s\t%s\t%s\t%s\t/scratch\tlustre\n", mod, rec.Rank, id, counter, value, rec.Path)
		}
		iRow := func(counter string, v int64) { row(counter, strconv.FormatInt(v, 10)) }
		fRow := func(counter string, v float64) {
			row(counter, strconv.FormatFloat(v, 'g', -1, 64))
		}
		c := &rec.C
		iRow(prefix+"_OPENS", c.Opens)
		if rec.Module != ModMPIIO {
			iRow(prefix+"_SEEKS", c.Seeks)
		}
		if rec.Module == ModPOSIX {
			iRow(prefix+"_STATS", c.Stats)
		}
		iRow(prefix+"_READS", c.Reads)
		iRow(prefix+"_WRITES", c.Writes)
		iRow(prefix+"_BYTES_READ", c.BytesRead)
		iRow(prefix+"_BYTES_WRITTEN", c.BytesWritten)
		fRow(prefix+"_F_OPEN_START_TIMESTAMP", c.OpenStart)
		fRow(prefix+"_F_OPEN_END_TIMESTAMP", c.OpenEnd)
		fRow(prefix+"_F_READ_START_TIMESTAMP", c.ReadStart)
		fRow(prefix+"_F_READ_END_TIMESTAMP", c.ReadEnd)
		fRow(prefix+"_F_WRITE_START_TIMESTAMP", c.WriteStart)
		fRow(prefix+"_F_WRITE_END_TIMESTAMP", c.WriteEnd)
		fRow(prefix+"_F_CLOSE_START_TIMESTAMP", c.CloseStart)
		fRow(prefix+"_F_CLOSE_END_TIMESTAMP", c.CloseEnd)
	}
	return bw.Flush()
}

func parserModuleName(m Module) string {
	switch m {
	case ModMPIIO:
		return "MPI-IO"
	case ModSTDIO:
		return "STDIO"
	default:
		return "POSIX"
	}
}

func parserCounterPrefix(m Module) string {
	switch m {
	case ModMPIIO:
		return "MPIIO"
	case ModSTDIO:
		return "STDIO"
	default:
		return "POSIX"
	}
}

// recordID derives a stable per-record identifier the way darshan hashes
// file paths; a running index disambiguates duplicate paths.
func recordID(p string, idx int) string {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(p); i++ {
		h = (h ^ uint64(p[i])) * 1099511628211
	}
	return strconv.FormatUint(h^uint64(idx), 10)
}

// guard against accidental unused import when the counter table changes.
var _ = path.Base
