package benchsuite

import (
	"os"
	"runtime"
	"testing"

	"github.com/mosaic-hpc/mosaic/internal/benchio"
)

// TestWriteQueryBaseline regenerates BENCH_query.json alone, without
// dragging the full pinned suite along:
//
//	MOSAIC_WRITE_QUERY_BASELINE=BENCH_query.json \
//	  go test ./internal/benchsuite -run TestWriteQueryBaseline -timeout 30m
//
// It is a no-op (skipped) in normal test runs.
func TestWriteQueryBaseline(t *testing.T) {
	path := os.Getenv("MOSAIC_WRITE_QUERY_BASELINE")
	if path == "" {
		t.Skip("set MOSAIC_WRITE_QUERY_BASELINE=<path> to regenerate the query baseline")
	}
	f := benchio.File{Go: runtime.Version(), OS: runtime.GOOS, Arch: runtime.GOARCH}
	for _, tgt := range Targets() {
		if tgt.File != QueryFile {
			continue
		}
		var best benchio.Entry
		const count = 3
		for c := 0; c < count; c++ {
			r := testing.Benchmark(tgt.Fn)
			ns := float64(r.T.Nanoseconds()) / float64(r.N)
			if c == 0 || ns < best.NsPerOp {
				best = benchio.Entry{
					Name:        tgt.Name,
					NsPerOp:     ns,
					BytesPerOp:  r.AllocedBytesPerOp(),
					AllocsPerOp: r.AllocsPerOp(),
					Iterations:  r.N,
				}
			}
		}
		t.Logf("%-44s %14.0f ns/op %10d B/op %8d allocs/op",
			best.Name, best.NsPerOp, best.BytesPerOp, best.AllocsPerOp)
		f.Entries = append(f.Entries, best)
	}
	if err := benchio.Write(path, f); err != nil {
		t.Fatal(err)
	}
}
