package engine

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// StageID names one stage of the pipeline.
type StageID string

// The five pipeline stages, in flow order.
const (
	StageScan       StageID = "scan"       // enumerate trace references
	StageDecode     StageID = "decode"     // parse traces (parallel, order-preserving)
	StageFunnel     StageID = "funnel"     // validate + deduplicate (streaming barrier)
	StageCategorize StageID = "categorize" // run the detection chain (parallel / remote)
	StageAggregate  StageID = "aggregate"  // accumulate corpus distributions
)

// Stages lists the pipeline stages in flow order.
func Stages() []StageID {
	return []StageID{StageScan, StageDecode, StageFunnel, StageCategorize, StageAggregate}
}

// Observer receives pipeline lifecycle events. Implementations must be
// safe for concurrent use: ItemIn/ItemOut/ItemError are called from stage
// worker goroutines. The built-in *Stats collector satisfies the common
// case; nil observers are replaced by a no-op.
type Observer interface {
	// StageStarted fires once when a stage begins processing.
	StageStarted(s StageID)
	// StageFinished fires once when a stage has drained (or aborted).
	StageFinished(s StageID)
	// ItemIn fires when a stage accepts one input item.
	ItemIn(s StageID)
	// ItemOut fires when a stage emits one output item.
	ItemOut(s StageID)
	// ItemError fires when a stage records an error for one item.
	ItemError(s StageID, err error)
}

// SpanObserver is an optional Observer extension: implementations
// additionally receive one completed span per item per stage (the
// trace's decode time, its funnel ingest time, the app's categorize
// time), identified by the trace path or the app's user/name. The
// engine type-asserts once per run; when the observer does not
// implement SpanObserver no per-item clock reads happen at all.
type SpanObserver interface {
	// ItemSpan fires after a stage finishes one item. name identifies
	// the item (trace path, app identity); start and d bound the work.
	ItemSpan(s StageID, name string, start time.Time, d time.Duration)
}

// NopObserver ignores every event.
type NopObserver struct{}

// StageStarted implements Observer.
func (NopObserver) StageStarted(StageID) {}

// StageFinished implements Observer.
func (NopObserver) StageFinished(StageID) {}

// ItemIn implements Observer.
func (NopObserver) ItemIn(StageID) {}

// ItemOut implements Observer.
func (NopObserver) ItemOut(StageID) {}

// ItemError implements Observer.
func (NopObserver) ItemError(StageID, error) {}

// MultiObserver fans events out to several observers, in argument
// order. When at least one observer implements SpanObserver the
// returned composite does too (forwarding spans only to those that
// do); otherwise it deliberately does not, so the engine skips span
// clock reads entirely.
func MultiObserver(obs ...Observer) Observer {
	m := multiObserver(obs)
	for _, o := range obs {
		if _, ok := o.(SpanObserver); ok {
			return &multiSpanObserver{multiObserver: m}
		}
	}
	return m
}

type multiObserver []Observer

func (m multiObserver) StageStarted(s StageID) {
	for _, o := range m {
		o.StageStarted(s)
	}
}
func (m multiObserver) StageFinished(s StageID) {
	for _, o := range m {
		o.StageFinished(s)
	}
}
func (m multiObserver) ItemIn(s StageID) {
	for _, o := range m {
		o.ItemIn(s)
	}
}
func (m multiObserver) ItemOut(s StageID) {
	for _, o := range m {
		o.ItemOut(s)
	}
}
func (m multiObserver) ItemError(s StageID, e error) {
	for _, o := range m {
		o.ItemError(s, e)
	}
}

// multiSpanObserver is the MultiObserver variant returned when at least
// one member implements SpanObserver.
type multiSpanObserver struct {
	multiObserver
}

func (m *multiSpanObserver) ItemSpan(s StageID, name string, start time.Time, d time.Duration) {
	for _, o := range m.multiObserver {
		if so, ok := o.(SpanObserver); ok {
			so.ItemSpan(s, name, start, d)
		}
	}
}

// StageSnapshot is the point-in-time view of one stage's counters.
type StageSnapshot struct {
	Stage    StageID       `json:"stage"`
	In       int64         `json:"in"`        // items accepted
	Out      int64         `json:"out"`       // items emitted
	Errors   int64         `json:"errors"`    // items that errored in the stage
	InFlight int64         `json:"in_flight"` // In - Out - Errors
	Started  bool          `json:"started"`
	Finished bool          `json:"finished"`
	Wall     time.Duration `json:"wall_ns"` // stage start to finish (or to now)
	// ItemsPerSec mirrors Throughput() so JSON snapshots (stages.json,
	// /debug/engine) carry the rate without the reader re-deriving it.
	ItemsPerSec float64 `json:"items_per_sec"`
}

// Throughput returns Out/Wall in items per second (0 when unknown).
func (s StageSnapshot) Throughput() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.Out) / s.Wall.Seconds()
}

// Stats is the built-in Observer: a thread-safe per-stage counter set
// that can be snapshotted at any time, including while the pipeline runs
// (progress views) and after it finishes (bench breakdowns).
type Stats struct {
	mu     sync.Mutex
	stages map[StageID]*stageStats
	now    func() time.Time // test hook
}

type stageStats struct {
	in, out, errs     int64
	started, finished bool
	startT, finishT   time.Time
}

// NewStats returns an empty collector.
func NewStats() *Stats {
	return &Stats{stages: make(map[StageID]*stageStats), now: time.Now}
}

func (t *Stats) get(s StageID) *stageStats {
	st, ok := t.stages[s]
	if !ok {
		st = &stageStats{}
		t.stages[s] = st
	}
	return st
}

// StageStarted implements Observer.
func (t *Stats) StageStarted(s StageID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.get(s)
	if !st.started {
		st.started = true
		st.startT = t.now()
	}
}

// StageFinished implements Observer.
func (t *Stats) StageFinished(s StageID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.get(s)
	if !st.finished {
		st.finished = true
		st.finishT = t.now()
	}
}

// ItemIn implements Observer.
func (t *Stats) ItemIn(s StageID) {
	t.mu.Lock()
	t.get(s).in++
	t.mu.Unlock()
}

// ItemOut implements Observer.
func (t *Stats) ItemOut(s StageID) {
	t.mu.Lock()
	t.get(s).out++
	t.mu.Unlock()
}

// ItemError implements Observer.
func (t *Stats) ItemError(s StageID, _ error) {
	t.mu.Lock()
	t.get(s).errs++
	t.mu.Unlock()
}

// Snapshot returns the current counters for every stage, in flow order.
// Stages that never started are omitted.
func (t *Stats) Snapshot() []StageSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]StageSnapshot, 0, len(t.stages))
	for _, id := range Stages() {
		st, ok := t.stages[id]
		if !ok {
			continue
		}
		inFlight := st.in - st.out - st.errs
		if inFlight < 0 || st.finished {
			// Stages that only emit (scan) or that reduce their input
			// (funnel: many traces in, few groups out) report no
			// in-flight work; a drained stage holds nothing either way.
			inFlight = 0
		}
		snap := StageSnapshot{
			Stage:    id,
			In:       st.in,
			Out:      st.out,
			Errors:   st.errs,
			InFlight: inFlight,
			Started:  st.started,
			Finished: st.finished,
		}
		switch {
		case st.started && st.finished:
			snap.Wall = st.finishT.Sub(st.startT)
		case st.started:
			snap.Wall = t.now().Sub(st.startT)
		}
		snap.ItemsPerSec = snap.Throughput()
		out = append(out, snap)
	}
	return out
}

// Stage returns the snapshot of one stage (zero value when the stage
// never ran).
func (t *Stats) Stage(id StageID) StageSnapshot {
	for _, s := range t.Snapshot() {
		if s.Stage == id {
			return s
		}
	}
	return StageSnapshot{Stage: id}
}

// WriteStageTable renders per-stage counters, wall times and rates as
// an aligned table — the one renderer shared by `mosaic -progress`
// (final view) and the mosaic-bench stage breakdown, so a perf
// regression can be attributed to one stage in either frontend.
func WriteStageTable(w io.Writer, stages []StageSnapshot) {
	if len(stages) == 0 {
		return
	}
	fmt.Fprintf(w, "  %-12s %10s %10s %8s %12s %14s\n", "stage", "in", "out", "errors", "wall", "items/s")
	for _, s := range stages {
		tp := "-"
		if t := s.Throughput(); t > 0 {
			tp = fmt.Sprintf("%.0f", t)
		}
		fmt.Fprintf(w, "  %-12s %10d %10d %8d %12v %14s\n",
			s.Stage, s.In, s.Out, s.Errors, s.Wall.Round(time.Millisecond), tp)
	}
}

// WriteTable renders the collector's current snapshot via
// WriteStageTable.
func (t *Stats) WriteTable(w io.Writer) { WriteStageTable(w, t.Snapshot()) }

// String renders a one-line per-stage summary, the shape used by the
// mosaic --progress view and the bench breakdown.
func (t *Stats) String() string {
	var b strings.Builder
	for i, s := range t.Snapshot() {
		if i > 0 {
			b.WriteString(" | ")
		}
		fmt.Fprintf(&b, "%s %d", s.Stage, s.Out)
		if s.InFlight > 0 {
			fmt.Fprintf(&b, " (+%d in flight)", s.InFlight)
		}
		if s.Errors > 0 {
			fmt.Fprintf(&b, " (%d err)", s.Errors)
		}
	}
	return b.String()
}
