package index

import (
	"fmt"
	"sort"
	"strings"

	"github.com/mosaic-hpc/mosaic/internal/category"
	"github.com/mosaic-hpc/mosaic/internal/store"
)

// Query grammar (case-insensitive keywords, left-associative):
//
//	expr   := orExpr
//	orExpr := andExpr ( "OR" andExpr )*
//	andExpr:= unary ( ("AND" | "NOT")? unary )*      // juxtaposition = AND;
//	                                                 // "a NOT b" = a AND (NOT b)
//	unary  := "NOT" unary | "(" expr ")" | term
//	term   := category name or substring of one
//
// A term expands to the union of all canonical categories whose name
// contains it: "periodic_minute" matches read_periodic_minute and
// write_periodic_minute; "insignificant_load" matches
// metadata_insignificant_load. NOT is evaluated against the universe
// of indexed traces.

// node is one parsed query expression.
type node interface {
	eval(ix *Index, universe map[store.TraceID]struct{}) map[store.TraceID]struct{}
}

type termNode struct{ cats []category.Category }

type andNode struct{ l, r node }

type orNode struct{ l, r node }

type notNode struct{ n node }

func (t termNode) eval(ix *Index, _ map[store.TraceID]struct{}) map[store.TraceID]struct{} {
	out := make(map[store.TraceID]struct{})
	ix.mu.RLock()
	for _, c := range t.cats {
		for id := range ix.byCat[c] {
			out[id] = struct{}{}
		}
	}
	ix.mu.RUnlock()
	return out
}

func (a andNode) eval(ix *Index, u map[store.TraceID]struct{}) map[store.TraceID]struct{} {
	l, r := a.l.eval(ix, u), a.r.eval(ix, u)
	if len(r) < len(l) {
		l, r = r, l
	}
	out := make(map[store.TraceID]struct{}, len(l))
	for id := range l {
		if _, ok := r[id]; ok {
			out[id] = struct{}{}
		}
	}
	return out
}

func (o orNode) eval(ix *Index, u map[store.TraceID]struct{}) map[store.TraceID]struct{} {
	out := o.l.eval(ix, u)
	for id := range o.r.eval(ix, u) {
		out[id] = struct{}{}
	}
	return out
}

func (n notNode) eval(ix *Index, u map[store.TraceID]struct{}) map[store.TraceID]struct{} {
	inner := n.n.eval(ix, u)
	out := make(map[store.TraceID]struct{})
	for id := range u {
		if _, ok := inner[id]; !ok {
			out[id] = struct{}{}
		}
	}
	return out
}

// ParseError describes a malformed query.
type ParseError struct {
	Query string
	Pos   int // token index
	Msg   string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("index: parsing %q: %s (near token %d)", e.Query, e.Msg, e.Pos)
}

type parser struct {
	query  string
	tokens []string
	pos    int
	depth  int
}

// maxParseDepth caps expression nesting. The parser is recursive, and
// in cluster mode queries arrive over the peer RPC as well as the
// public API — an adversarial "((((…" must produce a parse error, not
// a stack overflow.
const maxParseDepth = 512

func tokenize(q string) []string {
	var out []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for _, r := range q {
		switch r {
		case '(', ')':
			flush()
			out = append(out, string(r))
		case ' ', '\t', '\n', '\r', ',':
			flush()
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	return out
}

func (p *parser) peek() (string, bool) {
	if p.pos >= len(p.tokens) {
		return "", false
	}
	return p.tokens[p.pos], true
}

func (p *parser) fail(msg string) error {
	return &ParseError{Query: p.query, Pos: p.pos, Msg: msg}
}

func (p *parser) parseExpr() (node, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for {
		tok, ok := p.peek()
		if !ok || !strings.EqualFold(tok, "OR") {
			return left, nil
		}
		p.pos++
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = orNode{l: left, r: right}
	}
}

func (p *parser) parseAnd() (node, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		tok, ok := p.peek()
		if !ok || tok == ")" || strings.EqualFold(tok, "OR") {
			return left, nil
		}
		negate := false
		switch {
		case strings.EqualFold(tok, "AND"):
			p.pos++
		case strings.EqualFold(tok, "NOT"):
			// "a NOT b" is shorthand for "a AND NOT b".
			p.pos++
			negate = true
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if negate {
			right = notNode{n: right}
		}
		left = andNode{l: left, r: right}
	}
}

func (p *parser) parseUnary() (node, error) {
	tok, ok := p.peek()
	if !ok {
		return nil, p.fail("unexpected end of query")
	}
	// NOT and "(" both recurse; everything else is flat.
	if strings.EqualFold(tok, "NOT") || tok == "(" {
		p.depth++
		defer func() { p.depth-- }()
		if p.depth > maxParseDepth {
			return nil, p.fail("query too deeply nested")
		}
	}
	switch {
	case strings.EqualFold(tok, "NOT"):
		p.pos++
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return notNode{n: inner}, nil
	case tok == "(":
		p.pos++
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		closing, ok := p.peek()
		if !ok || closing != ")" {
			return nil, p.fail("missing closing parenthesis")
		}
		p.pos++
		return inner, nil
	case tok == ")":
		return nil, p.fail("unexpected closing parenthesis")
	case strings.EqualFold(tok, "AND") || strings.EqualFold(tok, "OR"):
		return nil, p.fail("operator needs a left operand")
	default:
		p.pos++
		cats := expandTerm(tok)
		if len(cats) == 0 {
			return nil, p.fail(fmt.Sprintf("term %q matches no category", tok))
		}
		return termNode{cats: cats}, nil
	}
}

// expandTerm resolves a query term against the closed category set:
// an exact name wins; otherwise every category containing the term as
// a substring matches.
func expandTerm(term string) []category.Category {
	t := strings.ToLower(term)
	all := category.All()
	for _, c := range all {
		if string(c) == t {
			return []category.Category{c}
		}
	}
	var out []category.Category
	for _, c := range all {
		if strings.Contains(string(c), t) {
			out = append(out, c)
		}
	}
	return out
}

// Parse validates a query, returning its parse error if malformed.
func Parse(q string) error {
	_, err := parseQuery(q)
	return err
}

func parseQuery(q string) (node, error) {
	p := &parser{query: q, tokens: tokenize(q)}
	if len(p.tokens) == 0 {
		return nil, &ParseError{Query: q, Msg: "empty query"}
	}
	root, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.tokens) {
		return nil, p.fail("trailing tokens")
	}
	return root, nil
}

// Query evaluates a boolean category expression, returning matching
// trace IDs in lexicographic order.
func (ix *Index) Query(q string) ([]store.TraceID, error) {
	root, err := parseQuery(q)
	if err != nil {
		return nil, err
	}
	ix.mu.RLock()
	universe := make(map[store.TraceID]struct{}, len(ix.byTrace))
	for id := range ix.byTrace {
		universe[id] = struct{}{}
	}
	ix.mu.RUnlock()
	matches := root.eval(ix, universe)
	out := make([]store.TraceID, 0, len(matches))
	for id := range matches {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// MergeSorted merges sorted trace-ID lists into one sorted,
// deduplicated list — the scatter-gather reduce step, where each
// shard's Query answer is already ordered and a replicated trace
// appears in more than one shard's answer. Unsorted inputs still
// produce a correct (sorted, deduplicated) union; sorted inputs merge
// in linear time.
func MergeSorted(lists ...[]string) []string {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	if total == 0 {
		return nil
	}
	out := make([]string, 0, total)
	// K-way merge by repeatedly taking the smallest head. K is the node
	// count — single digits — so a linear scan beats a heap.
	heads := make([]int, len(lists))
	for {
		best := -1
		for i, l := range lists {
			if heads[i] >= len(l) {
				continue
			}
			if best < 0 || l[heads[i]] < lists[best][heads[best]] {
				best = i
			}
		}
		if best < 0 {
			break
		}
		id := lists[best][heads[best]]
		heads[best]++
		if n := len(out); n == 0 || out[n-1] != id {
			out = append(out, id)
		}
	}
	if !sort.StringsAreSorted(out) {
		// An unsorted input slipped through the merge; fall back.
		sort.Strings(out)
		out = dedupSorted(out)
	}
	return out
}

func dedupSorted(ids []string) []string {
	out := ids[:0]
	for _, id := range ids {
		if n := len(out); n == 0 || out[n-1] != id {
			out = append(out, id)
		}
	}
	return out
}
