// Package dist implements distributed trace categorization over net/rpc:
// a master streams traces to remote workers, which run the MOSAIC pipeline
// and return results. It substitutes the Dispy cluster parallelization of
// the paper's Python implementation and backs the Section IV-E performance
// experiment in its distributed variant.
//
// Traces travel in the binary log format (internal/darshan), results as
// JSON; both are stable, versioned encodings, so master and workers can
// run different builds.
package dist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"sync/atomic"

	"github.com/mosaic-hpc/mosaic/internal/category"
	"github.com/mosaic-hpc/mosaic/internal/core"
	"github.com/mosaic-hpc/mosaic/internal/darshan"
	"github.com/mosaic-hpc/mosaic/internal/parallel"
)

// ServiceName is the RPC service name workers register.
const ServiceName = "Mosaic"

// CategorizeArgs is the RPC request: one binary-encoded trace and the
// pipeline configuration to apply.
type CategorizeArgs struct {
	Trace  []byte
	Config core.Config
}

// CategorizeReply is the RPC response. Invalid traces are not errors at
// the RPC layer: the master counts them as funnel evictions.
type CategorizeReply struct {
	Valid  bool
	Reason string // corruption reason when !Valid
	Result []byte // JSON-encoded core.Result when Valid
}

// Service is the worker-side RPC receiver.
type Service struct{}

// Categorize decodes, validates and categorizes one trace.
func (s *Service) Categorize(args *CategorizeArgs, reply *CategorizeReply) error {
	j, err := darshan.UnmarshalBinary(args.Trace)
	if err != nil {
		reply.Valid = false
		reply.Reason = "unreadable: " + err.Error()
		return nil
	}
	if err := darshan.Validate(j); err != nil {
		reply.Valid = false
		reply.Reason = err.Error()
		return nil
	}
	res, err := core.Categorize(j, args.Config)
	if err != nil {
		return fmt.Errorf("dist: categorize job %d: %w", j.JobID, err)
	}
	data, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("dist: encoding result: %w", err)
	}
	reply.Valid = true
	reply.Result = data
	return nil
}

// Serve registers the service on a fresh RPC server and accepts
// connections on l until it is closed. It blocks.
func Serve(l net.Listener) error {
	srv := rpc.NewServer()
	if err := srv.RegisterName(ServiceName, &Service{}); err != nil {
		return err
	}
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go srv.ServeConn(conn)
	}
}

// ListenAndServe serves workers on the given TCP address. It blocks.
func ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return Serve(l)
}

// Client is a connection to one worker.
type Client struct {
	c *rpc.Client
}

// Dial connects to a worker at addr.
func Dial(addr string) (*Client, error) {
	c, err := rpc.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dist: dialing worker %s: %w", addr, err)
	}
	return &Client{c: c}, nil
}

// Close releases the connection.
func (c *Client) Close() error { return c.c.Close() }

// Categorize sends one trace to the worker. An invalid trace returns
// (nil, reason, nil).
func (c *Client) Categorize(j *darshan.Job, cfg core.Config) (*core.Result, string, error) {
	return c.CategorizeContext(context.Background(), j, cfg)
}

// CategorizeContext is Categorize with cancellation: when ctx ends
// before the RPC completes, it returns ctx.Err() without waiting for the
// reply (the in-flight call is abandoned to net/rpc's bookkeeping).
func (c *Client) CategorizeContext(ctx context.Context, j *darshan.Job, cfg core.Config) (*core.Result, string, error) {
	data, err := darshan.MarshalBinary(j)
	if err != nil {
		return nil, "", err
	}
	args := &CategorizeArgs{Trace: data, Config: cfg}
	var reply CategorizeReply
	call := c.c.Go(ServiceName+".Categorize", args, &reply, make(chan *rpc.Call, 1))
	select {
	case <-ctx.Done():
		return nil, "", ctx.Err()
	case done := <-call.Done:
		if done.Error != nil {
			return nil, "", fmt.Errorf("dist: RPC: %w", done.Error)
		}
	}
	if !reply.Valid {
		return nil, reply.Reason, nil
	}
	var res core.Result
	if err := json.Unmarshal(reply.Result, &res); err != nil {
		return nil, "", fmt.Errorf("dist: decoding result: %w", err)
	}
	res.Categories = category.NewSet()
	for _, l := range res.Labels {
		res.Categories.Add(category.Category(l))
	}
	return &res, "", nil
}

// Outcome is the master-side result for one submitted trace.
type Outcome struct {
	Result *core.Result // nil when the trace was invalid
	Reason string       // eviction reason for invalid traces
	Err    error        // transport or pipeline failure
}

// Master fans traces out over a set of workers, each handling several
// in-flight requests, with failover across workers. It is an alternate
// executor for the engine's Categorize stage (it satisfies
// engine.Executor): pass it as mosaic.Options.Executor and the staged
// pipeline runs its detection chain on the remote cluster instead of
// in-process — no separate orchestration loop.
type Master struct {
	clients []*Client
	cfg     core.Config
	dead    []atomic.Bool // dead[i]: worker i hit a transport error
	next    atomic.Int64  // round-robin home-worker cursor
	// PerWorker is the number of in-flight requests per worker used to
	// size the stage concurrency (Concurrency); <= 0 means 2, enough to
	// overlap RPC round trips with remote compute.
	PerWorker int
}

// NewMaster wraps the given worker connections.
func NewMaster(clients []*Client, cfg core.Config) *Master {
	return &Master{clients: clients, cfg: cfg, dead: make([]atomic.Bool, len(clients))}
}

// Concurrency implements the engine executor contract: how many
// categorizations the engine should keep in flight across the cluster.
func (m *Master) Concurrency() int {
	per := m.PerWorker
	if per < 1 {
		per = 2
	}
	return len(m.clients) * per
}

// Categorize implements the engine's Categorize-stage executor: one
// validated trace in, one result out, with round-robin load spreading
// and failover across workers. Traces the cluster judges invalid (a
// master/worker validation skew) surface as errors here, since the
// engine's funnel has already filtered corrupted traces.
func (m *Master) Categorize(ctx context.Context, j *darshan.Job, cfg core.Config) (*core.Result, error) {
	home := int(m.next.Add(1)-1) % max(len(m.clients), 1)
	out := m.dispatch(ctx, j, cfg, home)
	switch {
	case out.Err != nil:
		return nil, out.Err
	case out.Result == nil:
		return nil, fmt.Errorf("dist: worker rejected validated trace %d: %s", j.JobID, out.Reason)
	default:
		return out.Result, nil
	}
}

// LiveWorkers returns how many workers have not failed.
func (m *Master) LiveWorkers() int {
	n := 0
	for i := range m.dead {
		if !m.dead[i].Load() {
			n++
		}
	}
	return n
}

// dispatch categorizes one job with failover: starting from the job's
// home worker, it tries every live worker in round-robin order, marking
// workers dead on transport errors. When every worker has failed, the
// last error is reported in the outcome; cancellation surfaces as
// ctx.Err() without marking workers dead.
func (m *Master) dispatch(ctx context.Context, j *darshan.Job, cfg core.Config, home int) Outcome {
	n := len(m.clients)
	var lastErr error
	for k := 0; k < n; k++ {
		if err := ctx.Err(); err != nil {
			return Outcome{Err: err}
		}
		ci := (home + k) % n
		if m.dead[ci].Load() {
			continue
		}
		res, reason, err := m.clients[ci].CategorizeContext(ctx, j, cfg)
		if err != nil {
			if ctx.Err() != nil {
				return Outcome{Err: ctx.Err()}
			}
			m.dead[ci].Store(true)
			lastErr = err
			continue
		}
		return Outcome{Result: res, Reason: reason}
	}
	if lastErr == nil {
		lastErr = errors.New("dist: no live workers")
	}
	return Outcome{Err: lastErr}
}

// Run streams jobs to the workers with the given per-worker concurrency
// and sends one Outcome per job on the returned channel, closed when the
// input channel is exhausted. Order is not preserved. Transport failures
// fail over to the remaining workers; a job is reported with an error
// only when every worker has failed.
//
// Run predates the engine and is kept for direct channel-style use; the
// fan-out itself is parallel.Map, so there is no second orchestration
// loop. New code should prefer driving the engine with the Master as
// Options.Executor, which adds the funnel and aggregation around the
// same dispatch path.
func (m *Master) Run(jobs <-chan *darshan.Job, perWorker int) <-chan Outcome {
	if perWorker < 1 {
		perWorker = 2
	}
	return parallel.Map(context.Background(), len(m.clients)*perWorker, jobs, func(j *darshan.Job) Outcome {
		home := int(m.next.Add(1)-1) % max(len(m.clients), 1)
		return m.dispatch(context.Background(), j, m.cfg, home)
	})
}
